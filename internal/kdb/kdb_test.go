package kdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *DB, sql string, args ...any) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...any) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT, api TEXT, tasks INTEGER)")
	res := mustExec(t, db, "INSERT INTO performances (command, api, tasks) VALUES (?, ?, ?)", "ior -a mpiio", "MPIIO", 80)
	if res.LastInsertID != 1 || res.RowsAffected != 1 {
		t.Errorf("insert result = %+v", res)
	}
	res = mustExec(t, db, "INSERT INTO performances (command, api, tasks) VALUES ('ior -a posix', 'POSIX', 40)")
	if res.LastInsertID != 2 {
		t.Errorf("auto id = %d", res.LastInsertID)
	}
	rows := mustQuery(t, db, "SELECT id, command, tasks FROM performances WHERE api = ? ORDER BY id", "MPIIO")
	if rows.Len() != 1 {
		t.Fatalf("rows = %d", rows.Len())
	}
	rows.Next()
	got := rows.Row()
	if got[0] != int64(1) || got[1] != "ior -a mpiio" || got[2] != int64(80) {
		t.Errorf("row = %v", got)
	}
	if !reflect.DeepEqual(rows.Columns, []string{"id", "command", "tasks"}) {
		t.Errorf("columns = %v", rows.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'x', 2.5)")
	rows := mustQuery(t, db, "SELECT * FROM t")
	if !reflect.DeepEqual(rows.Columns, []string{"a", "b", "c"}) {
		t.Errorf("columns = %v", rows.Columns)
	}
	rows.Next()
	if !reflect.DeepEqual(rows.Row(), []any{int64(1), "x", 2.5}) {
		t.Errorf("row = %v", rows.Row())
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	if res.RowsAffected != 3 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	row, err := db.QueryRow("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(3) {
		t.Errorf("count = %v", row[0])
	}
}

func TestWhereOperators(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (n INTEGER, s TEXT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", i, fmt.Sprintf("row%d", i))
	}
	cases := []struct {
		where string
		args  []any
		want  int
	}{
		{"n = 5", nil, 1},
		{"n != 5", nil, 9},
		{"n <> 5", nil, 9},
		{"n < 3", nil, 2},
		{"n <= 3", nil, 3},
		{"n > 8", nil, 2},
		{"n >= 8", nil, 3},
		{"n > 2 AND n < 5", nil, 2},
		{"n < 3 OR n > 8", nil, 4},
		{"NOT n = 1", nil, 9},
		{"(n < 3 OR n > 8) AND n != 1", nil, 3},
		{"s LIKE 'row1%'", nil, 2}, // row1, row10
		{"s LIKE 'row_'", nil, 9},  // row1..row9
		{"n = ?", []any{7}, 1},
		{"n > ? AND n < ?", []any{2, 6}, 3},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT n FROM t WHERE "+c.where, c.args...)
		if rows.Len() != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, rows.Len(), c.want)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (n INTEGER, r REAL)")
	for _, n := range []int{3, 1, 4, 1, 5} {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", n, float64(n)*1.5)
	}
	rows := mustQuery(t, db, "SELECT n FROM t ORDER BY n")
	var got []int64
	for rows.Next() {
		got = append(got, rows.Row()[0].(int64))
	}
	if !reflect.DeepEqual(got, []int64{1, 1, 3, 4, 5}) {
		t.Errorf("asc = %v", got)
	}
	rows = mustQuery(t, db, "SELECT n FROM t ORDER BY n DESC LIMIT 2")
	got = nil
	for rows.Next() {
		got = append(got, rows.Row()[0].(int64))
	}
	if !reflect.DeepEqual(got, []int64{5, 4}) {
		t.Errorf("desc limit = %v", got)
	}
	rows = mustQuery(t, db, "SELECT n FROM t LIMIT 0")
	if rows.Len() != 0 {
		t.Errorf("limit 0 = %d rows", rows.Len())
	}
}

func TestAggregates(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE r (bw REAL)")
	for _, v := range []float64{2850, 1251, 2840, 2860} {
		mustExec(t, db, "INSERT INTO r VALUES (?)", v)
	}
	row, err := db.QueryRow("SELECT COUNT(*), MIN(bw), MAX(bw), AVG(bw), SUM(bw) FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(4) || row[1] != 1251.0 || row[2] != 2860.0 {
		t.Errorf("count/min/max = %v", row)
	}
	if avg := row[3].(float64); avg < 2450 || avg > 2451 {
		t.Errorf("avg = %v", avg)
	}
	if row[4] != 9801.0 {
		t.Errorf("sum = %v", row[4])
	}
	// Aggregate with WHERE.
	row, _ = db.QueryRow("SELECT COUNT(*) FROM r WHERE bw > 2000")
	if row[0] != int64(3) {
		t.Errorf("filtered count = %v", row[0])
	}
	// Alias.
	rows := mustQuery(t, db, "SELECT AVG(bw) AS meanbw FROM r")
	if rows.Columns[0] != "meanbw" {
		t.Errorf("alias = %v", rows.Columns)
	}
	// Aggregate over empty set.
	row, _ = db.QueryRow("SELECT MIN(bw) FROM r WHERE bw > 99999")
	if row[0] != nil {
		t.Errorf("min of empty = %v", row[0])
	}
}

func TestJoin(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT)")
	mustExec(t, db, "CREATE TABLE summaries (id INTEGER PRIMARY KEY, performance_id INTEGER, operation TEXT, mean_mib REAL)")
	mustExec(t, db, "INSERT INTO performances (command) VALUES ('ior A'), ('ior B')")
	mustExec(t, db, "INSERT INTO summaries (performance_id, operation, mean_mib) VALUES (1, 'write', 2850), (1, 'read', 3720), (2, 'write', 900)")
	rows := mustQuery(t, db, `SELECT performances.command, summaries.operation, summaries.mean_mib
		FROM performances JOIN summaries ON performances.id = summaries.performance_id
		WHERE summaries.operation = 'write' ORDER BY summaries.mean_mib DESC`)
	if rows.Len() != 2 {
		t.Fatalf("join rows = %d", rows.Len())
	}
	rows.Next()
	if r := rows.Row(); r[0] != "ior A" || r[2] != 2850.0 {
		t.Errorf("first join row = %v", r)
	}
	rows.Next()
	if r := rows.Row(); r[0] != "ior B" {
		t.Errorf("second join row = %v", r)
	}
	// INNER JOIN spelling.
	rows = mustQuery(t, db, "SELECT command FROM performances INNER JOIN summaries ON performances.id = summaries.performance_id")
	if rows.Len() != 3 {
		t.Errorf("inner join rows = %d", rows.Len())
	}
}

func TestUpdateDelete(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT, n INTEGER)")
	mustExec(t, db, "INSERT INTO t (s, n) VALUES ('a', 1), ('b', 2), ('c', 3)")
	res := mustExec(t, db, "UPDATE t SET s = ?, n = ? WHERE id = 2", "B", 20)
	if res.RowsAffected != 1 {
		t.Errorf("update affected = %d", res.RowsAffected)
	}
	row, _ := db.QueryRow("SELECT s, n FROM t WHERE id = 2")
	if row[0] != "B" || row[1] != int64(20) {
		t.Errorf("updated row = %v", row)
	}
	res = mustExec(t, db, "DELETE FROM t WHERE n < 20")
	if res.RowsAffected != 2 {
		t.Errorf("delete affected = %d", res.RowsAffected)
	}
	row, _ = db.QueryRow("SELECT COUNT(*) FROM t")
	if row[0] != int64(1) {
		t.Errorf("remaining = %v", row[0])
	}
	// Update all rows (no WHERE).
	mustExec(t, db, "UPDATE t SET n = 0")
	row, _ = db.QueryRow("SELECT n FROM t")
	if row[0] != int64(0) {
		t.Errorf("n = %v", row[0])
	}
}

func TestDistinct(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('x'), ('y'), ('x')")
	rows := mustQuery(t, db, "SELECT DISTINCT s FROM t ORDER BY s")
	if rows.Len() != 2 {
		t.Errorf("distinct rows = %d", rows.Len())
	}
}

func TestNullHandling(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
	mustExec(t, db, "INSERT INTO t (v) VALUES (NULL), (1.5)")
	rows := mustQuery(t, db, "SELECT v FROM t WHERE v > 0")
	if rows.Len() != 1 {
		t.Errorf("null comparison leaked: %d rows", rows.Len())
	}
	rows = mustQuery(t, db, "SELECT v FROM t ORDER BY v")
	rows.Next()
	if rows.Row()[0] != nil {
		t.Error("NULL should order first")
	}
	// COUNT(col) skips NULLs, COUNT(*) does not.
	row, _ := db.QueryRow("SELECT COUNT(v), COUNT(*) FROM t")
	if row[0] != int64(1) || row[1] != int64(2) {
		t.Errorf("counts = %v", row)
	}
}

func TestTypeCoercion(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (i INTEGER, r REAL, s TEXT)")
	// int into REAL is fine; whole float into INTEGER is fine.
	mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?)", 3.0, 4, "ok")
	row, _ := db.QueryRow("SELECT i, r, s FROM t")
	if row[0] != int64(3) || row[1] != 4.0 || row[2] != "ok" {
		t.Errorf("coerced row = %v", row)
	}
	if _, err := db.Exec("INSERT INTO t (i) VALUES (?)", 3.5); err == nil {
		t.Error("fractional into INTEGER should fail")
	}
	if _, err := db.Exec("INSERT INTO t (s) VALUES (?)", 7); err == nil {
		t.Error("int into TEXT should fail")
	}
	if _, err := db.Exec("INSERT INTO t (r) VALUES (?)", "x"); err == nil {
		t.Error("text into REAL should fail")
	}
}

func TestErrors(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	cases := []string{
		"SELEC * FROM t",
		"SELECT * FROM missing",
		"SELECT nope FROM t",
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
		"INSERT INTO t VALUES (1, 2)",
		"CREATE TABLE t (a INTEGER)",
		"CREATE TABLE u (a INTEGER, a TEXT)",
		"CREATE TABLE v (a TEXT PRIMARY KEY)",
		"CREATE TABLE w (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)",
		"DROP TABLE missing",
		"DELETE FROM missing",
		"UPDATE missing SET a = 1",
		"UPDATE t SET nope = 1",
		"SELECT * FROM t WHERE a = 'x' AND",
		"SELECT * FROM t LIMIT -1",
		"SELECT MIN(*) FROM t",
		"SELECT a FROM t WHERE a = ? trailing",
		"SELECT * FROM t JOIN missing ON t.a = missing.b",
	}
	for _, sql := range cases {
		if _, qerr := db.Query(sql); qerr == nil {
			if _, eerr := db.Exec(sql); eerr == nil {
				t.Errorf("%q should fail", sql)
			}
		}
	}
	if _, err := db.Exec("SELECT * FROM t"); err == nil {
		t.Error("Exec(SELECT) should fail")
	}
	if _, err := db.Query("DELETE FROM t"); err == nil {
		t.Error("Query(DELETE) should fail")
	}
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := db.Query("SELECT a FROM t WHERE a = ?"); err == nil {
		t.Error("missing placeholder arg should fail")
	}
	if _, err := db.QueryRow("SELECT a FROM t WHERE a = 99"); err == nil {
		t.Error("QueryRow on empty result should fail")
	}
}

func TestIfNotExistsAndIfExists(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INTEGER)")
	mustExec(t, db, "DROP TABLE IF EXISTS missing")
	mustExec(t, db, "DROP TABLE t")
	if got := db.Tables(); len(got) != 0 {
		t.Errorf("tables = %v", got)
	}
}

func TestStringEscapes(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('it''s')")
	row, _ := db.QueryRow("SELECT s FROM t")
	if row[0] != "it's" {
		t.Errorf("escaped string = %q", row[0])
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('unterminated)"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestSchemaIntrospection(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)")
	cols, err := db.Schema("t")
	if err != nil {
		t.Fatal(err)
	}
	want := []ColumnDef{
		{Name: "id", Type: TInteger, PrimaryKey: true},
		{Name: "name", Type: TText},
		{Name: "score", Type: TReal},
	}
	if !reflect.DeepEqual(cols, want) {
		t.Errorf("schema = %+v", cols)
	}
	if _, err := db.Schema("missing"); err == nil {
		t.Error("missing schema should fail")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE performances (id INTEGER PRIMARY KEY, command TEXT, bw REAL)")
	mustExec(t, db, "INSERT INTO performances (command, bw) VALUES (?, ?)", "ior -a mpiio", 2850.5)
	mustExec(t, db, "INSERT INTO performances (command, bw) VALUES (?, ?)", "ior -a posix", 1251.25)
	mustExec(t, db, "UPDATE performances SET bw = ? WHERE id = 2", 1300.0)
	mustExec(t, db, "DELETE FROM performances WHERE command LIKE '%posix%' AND bw > 9999")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, "SELECT id, command, bw FROM performances ORDER BY id")
	if rows.Len() != 2 {
		t.Fatalf("reopened rows = %d", rows.Len())
	}
	rows.Next()
	if r := rows.Row(); r[0] != int64(1) || r[1] != "ior -a mpiio" || r[2] != 2850.5 {
		t.Errorf("row 1 = %v", r)
	}
	rows.Next()
	if r := rows.Row(); r[2] != 1300.0 {
		t.Errorf("row 2 = %v", r)
	}
	// Auto-increment continues after reopen.
	res := mustExec(t, db2, "INSERT INTO performances (command, bw) VALUES ('x', 1)")
	if res.LastInsertID != 3 {
		t.Errorf("id after reopen = %d", res.LastInsertID)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO t (v) VALUES (?)", float64(i))
	}
	mustExec(t, db, "DELETE FROM t WHERE id > 10")
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Still usable after compaction.
	mustExec(t, db, "INSERT INTO t (v) VALUES (?)", 123.0)
	db.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	row, _ := db2.QueryRow("SELECT COUNT(*) FROM t")
	if row[0] != int64(11) {
		t.Errorf("compacted count = %v", row[0])
	}
	row, _ = db2.QueryRow("SELECT v FROM t WHERE v = 123.0")
	if row[0] != 123.0 {
		t.Errorf("post-compact insert lost: %v", row)
	}
	if err := memDB(t).Compact(); err == nil {
		t.Error("in-memory compact should fail")
	}
}

func TestCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := writeFile(path, "{\"sql\": \"CREATE TABLE t (a INTEGER)\"}\nnot json\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt log should fail to open")
	}
	if err := writeFile(path, "{\"sql\": \"BOGUS SQL\"}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("log with bogus SQL should fail to open")
	}
}

func writeFile(path, content string) error {
	return writeFileBytes(path, []byte(content))
}

func writeFileBytes(path string, b []byte) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Property: values inserted through placeholders come back unchanged for
// all three column types.
func TestInsertSelectRoundTripProperty(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, i INTEGER, r REAL, s TEXT)")
	n := 0
	f := func(i int64, r float64, s string) bool {
		if r != r || len(s) > 10000 { // NaN never equals itself
			return true
		}
		n++
		res, err := db.Exec("INSERT INTO t (i, r, s) VALUES (?, ?, ?)", i, r, s)
		if err != nil {
			return false
		}
		row, err := db.QueryRow("SELECT i, r, s FROM t WHERE id = ?", res.LastInsertID)
		if err != nil {
			return false
		}
		return row[0] == i && row[1] == r && row[2] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if n == 0 {
		t.Fatal("property never exercised")
	}
}

// Property: ORDER BY produces a sorted column.
func TestOrderBySortedProperty(t *testing.T) {
	f := func(vals []int16) bool {
		db, _ := Open("")
		if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := db.Exec("INSERT INTO t VALUES (?)", int64(v)); err != nil {
				return false
			}
		}
		rows, err := db.Query("SELECT n FROM t ORDER BY n")
		if err != nil {
			return false
		}
		var prev int64 = -1 << 62
		for rows.Next() {
			v := rows.Row()[0].(int64)
			if v < prev {
				return false
			}
			prev = v
		}
		return rows.Len() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h___lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"HELLO", "hello", true}, // case-insensitive
		{"ior -a mpiio", "%mpiio%", true},
		{"ior -a posix", "%mpiio%", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)")
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 100; i++ {
				if _, e := db.Exec("INSERT INTO t (n) VALUES (?)", g*1000+i); e != nil {
					err = e
					break
				}
			}
			done <- err
		}(g)
		go func() {
			var err error
			for i := 0; i < 100; i++ {
				if _, e := db.Query("SELECT COUNT(*) FROM t"); e != nil {
					err = e
					break
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	row, _ := db.QueryRow("SELECT COUNT(*) FROM t")
	if row[0] != int64(400) {
		t.Errorf("count = %v, want 400", row[0])
	}
}

func createFile(path string) (*os.File, error) { return os.Create(path) }

func TestGroupBy(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE s (performance_id INTEGER, operation TEXT, bw REAL)")
	rows := [][]any{
		{1, "write", 2850.0}, {1, "write", 1251.0}, {1, "read", 3720.0},
		{2, "write", 900.0}, {2, "read", 1500.0}, {2, "read", 1600.0},
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO s VALUES (?, ?, ?)", r...)
	}
	res := mustQuery(t, db, "SELECT operation, COUNT(*), AVG(bw) AS meanbw FROM s GROUP BY operation")
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	if !reflect.DeepEqual(res.Columns, []string{"operation", "count(*)", "meanbw"}) {
		t.Errorf("columns = %v", res.Columns)
	}
	res.Next()
	first := res.Row() // "read" sorts before "write"
	if first[0] != "read" || first[1] != int64(3) {
		t.Errorf("first group = %v", first)
	}
	res.Next()
	second := res.Row()
	if second[0] != "write" || second[1] != int64(3) {
		t.Errorf("second group = %v", second)
	}
	if avg := second[2].(float64); avg < 1667-1 || avg > 1667+1 {
		t.Errorf("write avg = %v", avg)
	}
	// Multi-column grouping.
	res = mustQuery(t, db, "SELECT performance_id, operation, MAX(bw) FROM s GROUP BY performance_id, operation")
	if res.Len() != 4 {
		t.Errorf("multi-key groups = %d", res.Len())
	}
	// WHERE before grouping.
	res = mustQuery(t, db, "SELECT operation, COUNT(*) FROM s WHERE bw > 1400 GROUP BY operation")
	res.Next()
	if r := res.Row(); r[0] != "read" || r[1] != int64(3) {
		t.Errorf("filtered group = %v", r)
	}
	// LIMIT applies to groups.
	res = mustQuery(t, db, "SELECT operation, COUNT(*) FROM s GROUP BY operation LIMIT 1")
	if res.Len() != 1 {
		t.Errorf("limited groups = %d", res.Len())
	}
}

func TestGroupByErrors(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE s (a INTEGER, b REAL)")
	mustExec(t, db, "INSERT INTO s VALUES (1, 2.0)")
	bad := []string{
		"SELECT b FROM s GROUP BY a",         // b not grouped/aggregated
		"SELECT * FROM s GROUP BY a",         // star invalid
		"SELECT a FROM s GROUP BY nope",      // unknown group column
		"SELECT MIN(nope) FROM s GROUP BY a", // unknown aggregate column
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestGroupByNulls(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE s (k TEXT, v REAL)")
	mustExec(t, db, "INSERT INTO s VALUES ('a', NULL), ('a', 2.0), ('b', NULL)")
	res := mustQuery(t, db, "SELECT k, COUNT(v), AVG(v) FROM s GROUP BY k")
	res.Next()
	if r := res.Row(); r[0] != "a" || r[1] != int64(1) || r[2] != 2.0 {
		t.Errorf("group a = %v", r)
	}
	res.Next()
	if r := res.Row(); r[0] != "b" || r[1] != int64(0) || r[2] != nil {
		t.Errorf("group b = %v", r)
	}
}

// Property: the parser never panics and always returns a statement or an
// error for arbitrary input.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Targeted near-miss inputs.
	nearMisses := []string{
		"SELECT", "SELECT *", "SELECT * FROM", "SELECT * FROM t WHERE",
		"INSERT INTO", "INSERT INTO t VALUES", "INSERT INTO t VALUES (",
		"CREATE TABLE t (", "CREATE TABLE t (a", "UPDATE t SET",
		"DELETE FROM t WHERE (", "SELECT a FROM t GROUP", "SELECT a FROM t ORDER",
		"SELECT COUNT( FROM t", ";", "(((((", "''''", "?????",
	}
	for _, in := range nearMisses {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("parse(%q) panicked", in)
				}
			}()
			_, _ = parse(in)
		}()
	}
}
