package kdb

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func resetTracing(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		telemetry.SetSlowQueryThreshold(0)
		telemetry.SetTracing(false)
		telemetry.SetTraceNode("")
		telemetry.Traces.Reset()
	})
	telemetry.Traces.Reset()
}

// TestWireRequestOmitsTraceFieldsWhenUntraced pins the compatibility
// contract: an untraced request marshals to exactly the bytes an old
// client would send, so old servers see nothing new.
func TestWireRequestOmitsTraceFieldsWhenUntraced(t *testing.T) {
	data, err := json.Marshal(wireRequest{Op: "query", SQL: "SELECT 1"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "trace") || strings.Contains(string(data), "span") {
		t.Fatalf("untraced request leaks trace fields: %s", data)
	}
}

// legacyRequest is the wire request as an old peer knew it: no trace
// fields. Decoding a new request into it must succeed (encoding/json drops
// unknown fields), which is the whole backward-compatibility story.
type legacyRequest struct {
	Op   string   `json:"op"`
	SQL  string   `json:"sql,omitempty"`
	Args []walArg `json:"args,omitempty"`
}

// TestWireTraceCompatNewClientOldServer runs a traced client against a
// simulated pre-tracing server: the request carries trace fields, the old
// decoder drops them, and the query succeeds — degradation means losing
// server-side spans, never an error.
func TestWireTraceCompatNewClientOldServer(t *testing.T) {
	resetTracing(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sawTraceID := make(chan bool, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Peek at the raw bytes first to prove the trace context was
		// actually on the wire, then decode as an old server would.
		var raw json.RawMessage
		dec := json.NewDecoder(bufio.NewReader(conn))
		if err := dec.Decode(&raw); err != nil {
			return
		}
		sawTraceID <- strings.Contains(string(raw), `"trace_id"`)
		var req legacyRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			json.NewEncoder(conn).Encode(wireResponse{Err: "legacy decode: " + err.Error()})
			return
		}
		json.NewEncoder(conn).Encode(wireResponse{Columns: []string{"one"}})
	}()

	r, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tc := telemetry.TraceContext{TraceID: "cafecafecafecafe", SpanID: "beefbeef"}
	rows, err := r.QueryTraced(tc, "SELECT 1")
	if err != nil {
		t.Fatalf("traced query against legacy server: %v", err)
	}
	if len(rows.Columns) != 1 || rows.Columns[0] != "one" {
		t.Fatalf("columns = %v", rows.Columns)
	}
	select {
	case saw := <-sawTraceID:
		if !saw {
			t.Error("traced request did not carry trace_id on the wire")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("legacy server never saw the request")
	}
}

// TestWireTraceCompatOldClientNewServer sends a hand-rolled pre-tracing
// request (no trace fields) to a current server: it must be served
// normally, not rejected, and must not invent spans when tracing is off.
func TestWireTraceCompatOldClientNewServer(t *testing.T) {
	resetTracing(t)
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	addr := startServerFull(t, &Server{DB: db})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(legacyRequest{Op: "query", SQL: "SELECT v FROM t WHERE id = 1"}); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("legacy request rejected: %s", resp.Err)
	}
	if len(resp.Rows) != 1 || len(resp.Columns) != 1 || resp.Columns[0] != "v" {
		t.Fatalf("response = %+v", resp)
	}
	if got := telemetry.Traces.AllSpans(); len(got) != 0 {
		t.Fatalf("untraced legacy request recorded spans: %+v", got)
	}
}

// TestTracedQueryThroughServer checks the span chain a remote query
// produces when client and server share a process: the client's rpc hop,
// the server's dispatch hop, and the engine's select hop form one linked
// trace.
func TestTracedQueryThroughServer(t *testing.T) {
	resetTracing(t)
	telemetry.SetTracing(true)
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')"); err != nil {
		t.Fatal(err)
	}
	addr := startServerFull(t, &Server{DB: db, Advertise: "db-1"})
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	telemetry.Traces.Reset() // drop setup spans

	root := telemetry.StartHop(telemetry.TraceContext{}, "client")
	rows, err := r.QueryTraced(root.Context(), "SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	root.End()

	spans := telemetry.Traces.Spans(root.TraceID())
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"client", "rpc.query", "server.query", "db.select"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing %q span, have %+v", name, spans)
		}
	}
	if byName["rpc.query"].ParentID != byName["client"].SpanID ||
		byName["server.query"].ParentID != byName["rpc.query"].SpanID ||
		byName["db.select"].ParentID != byName["server.query"].SpanID {
		t.Fatalf("span chain broken: %+v", spans)
	}
	if byName["server.query"].Node != "db-1" {
		t.Fatalf("server span node = %q, want advertise address", byName["server.query"].Node)
	}
	if got := byName["db.select"].AttrsText(); !strings.Contains(got, "rows=2") || !strings.Contains(got, "path=scan") {
		t.Fatalf("db.select attrs = %q", got)
	}
	if got := byName["rpc.query"].AttrsText(); !strings.Contains(got, "rows=2") {
		t.Fatalf("rpc.query attrs = %q", got)
	}
}

// TestBuiltinTraceTables exercises __slow_queries and __trace_spans as
// real tables: projection, WHERE, ORDER BY, and aggregates all work, with
// no provider attached.
func TestBuiltinTraceTables(t *testing.T) {
	resetTracing(t)
	began := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	telemetry.Traces.RecordSlow(telemetry.SlowQuery{
		TraceID: "t1", SQL: "SELECT slow", Node: "primary", Start: began, Seconds: 2.5, Rows: 10})
	telemetry.Traces.RecordSlow(telemetry.SlowQuery{
		TraceID: "t2", SQL: "SELECT slower", Node: "primary", Start: began.Add(time.Second), Seconds: 5, Rows: 1})
	telemetry.Traces.Record(telemetry.SpanRecord{
		TraceID: "t1", SpanID: "s1", Name: "db.select", Node: "primary", Start: began, Seconds: 2.5,
		SQL: "SELECT slow", Attrs: []telemetry.Attr{{Key: "rows", Value: "10"}}})
	telemetry.Traces.Record(telemetry.SpanRecord{
		TraceID: "t2", SpanID: "s2", Name: "db.select", Node: "primary", Start: began, Seconds: 5})

	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rows, err := db.Query("SELECT trace_id, sql, seconds, rows FROM __slow_queries ORDER BY seconds DESC")
	if err != nil {
		t.Fatalf("__slow_queries: %v", err)
	}
	all := rows.All()
	if len(all) != 2 || all[0][0] != "t2" || all[0][2] != 5.0 || all[1][3] != int64(10) {
		t.Fatalf("slow rows = %v", all)
	}

	rows, err = db.Query("SELECT COUNT(*) FROM __slow_queries WHERE seconds > ?", 3.0)
	if err != nil {
		t.Fatalf("aggregate over __slow_queries: %v", err)
	}
	if got := rows.All(); len(got) != 1 || got[0][0] != int64(1) {
		t.Fatalf("count = %v", got)
	}

	rows, err = db.Query("SELECT span_id, name, attrs FROM __trace_spans WHERE trace_id = ?", "t1")
	if err != nil {
		t.Fatalf("__trace_spans: %v", err)
	}
	if got := rows.All(); len(got) != 1 || got[0][0] != "s1" || got[0][2] != "rows=10" {
		t.Fatalf("span rows = %v", got)
	}

	// hops counts the retained spans per slow query.
	rows, err = db.Query("SELECT hops FROM __slow_queries WHERE trace_id = ?", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.All(); len(got) != 1 || got[0][0] != int64(1) {
		t.Fatalf("hops = %v", got)
	}
}

// TestSlowQueryLogEndToEnd arms the threshold and checks that a real
// query lands in the log and is then visible through the system table.
func TestSlowQueryLogEndToEnd(t *testing.T) {
	resetTracing(t)
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	telemetry.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := db.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	telemetry.SetSlowQueryThreshold(0) // freeze the log before inspecting it

	var found bool
	for _, q := range telemetry.Traces.SlowQueries() {
		if q.SQL == "SELECT id FROM t" && q.Rows == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow log missing the query: %+v", telemetry.Traces.SlowQueries())
	}
	rows, err := db.Query("SELECT sql FROM __slow_queries WHERE sql = ?", "SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("__slow_queries rows = %v", rows.All())
	}
}
