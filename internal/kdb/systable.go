package kdb

import (
	"fmt"
	"strings"
)

// System-table routing. A provider (internal/vcs) can serve virtual
// tables whose names start with "__" — commit history (__log), branch
// heads (__branches), commit diffs (__diff) — so the explorer and the
// analytics tier query versioned knowledge with plain SQL. The hook runs
// before the read lock is taken, like the columnar hook: the provider
// materializes the virtual table's rows (re-entering the database through
// its public query surface as needed), and the engine then executes the
// original SELECT against that table with its full WHERE / ORDER BY /
// aggregate semantics, so a system table behaves exactly like a real one.

// SystemTableProvider materializes virtual "__"-prefixed tables. filters
// carries the query's AND-only equality conjuncts (lowercased column name
// → bound value) so providers whose tables are parameterized — __diff
// needs its from/to refs — can see them; the provider must still emit
// those values as row columns, since the engine re-applies the full WHERE
// clause afterwards. claimed=false declines the name (the query then
// fails with "no such table", as without a provider).
type SystemTableProvider interface {
	SystemTable(name string, filters map[string]any) (cols []ColumnDef, rows [][]any, claimed bool, err error)
}

// systemHook wraps the provider for atomic.Pointer storage.
type systemHook struct{ p SystemTableProvider }

// SetSystemTables attaches (or, with nil, detaches) a system-table
// provider. Safe to call concurrently with queries.
func (db *DB) SetSystemTables(p SystemTableProvider) {
	if p == nil {
		db.system.Store(nil)
		return
	}
	db.system.Store(&systemHook{p: p})
}

// querySystem serves one SELECT whose FROM table a provider claims. The
// attached provider gets first refusal; the built-in tracing tables
// (__slow_queries, __trace_spans) answer next, so they coexist with a
// versioning provider's __log family. served=false falls through to the
// row engine.
func (db *DB) querySystem(sel *selectStmt, args []any) (rows *Rows, served bool, err error) {
	name := strings.ToLower(sel.Table)
	h := db.system.Load()
	if h == nil && !isTraceTable(name) {
		return nil, false, nil
	}
	filters := map[string]any{}
	if fs, ok := analyticFilters(sel.Where); ok {
		for _, f := range fs {
			if f.Op != "=" {
				continue
			}
			v := f.Lit
			if f.Arg >= 0 {
				if f.Arg >= len(args) {
					return nil, false, fmt.Errorf("kdb: missing argument %d", f.Arg+1)
				}
				v = args[f.Arg]
			}
			n, err := normalizeArg(v)
			if err != nil {
				return nil, false, err
			}
			filters[strings.ToLower(f.Col.Name)] = n
		}
	}
	var (
		cols    []ColumnDef
		data    [][]any
		claimed bool
	)
	if h != nil {
		cols, data, claimed, err = h.p.SystemTable(name, filters)
		if err != nil {
			return nil, true, err
		}
	}
	if !claimed {
		cols, data, claimed = traceSystemTable(name)
	}
	if !claimed {
		return nil, false, nil
	}
	t := &Table{Name: sel.Table, Columns: cols, Rows: data, pkIndex: -1}
	scratch := &DB{tables: map[string]*Table{name: t}}
	rows, err = scratch.execSelect(sel, args)
	return rows, true, err
}
