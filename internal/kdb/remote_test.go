package kdb

import (
	"strings"
	"sync"
	"testing"
)

// startServer serves an in-memory DB on an ephemeral port and returns the
// dial address.
func startServer(t *testing.T) (*DB, string) {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{DB: db}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return db, l.Addr().String()
}

func TestRemoteExecQuery(t *testing.T) {
	_, addr := startServer(t)
	r, err := Dial("kdb://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT, v REAL)"); err != nil {
		t.Fatal(err)
	}
	res, err := r.Exec("INSERT INTO t (s, v) VALUES (?, ?)", "hello", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 1 || res.RowsAffected != 1 {
		t.Errorf("result = %+v", res)
	}
	if _, err := r.Exec("INSERT INTO t (s, v) VALUES (?, ?)", "world", 3.5); err != nil {
		t.Fatal(err)
	}
	rows, err := r.Query("SELECT id, s, v FROM t WHERE v > ? ORDER BY id", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Columns[1] != "s" {
		t.Fatalf("rows = %+v", rows)
	}
	rows.Next()
	got := rows.Row()
	if got[0] != int64(2) || got[1] != "world" || got[2] != 3.5 {
		t.Errorf("row = %v", got)
	}
	row, err := r.QueryRow("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(2) {
		t.Errorf("count = %v", row[0])
	}
	// NULL values survive the wire.
	if _, err := r.Exec("INSERT INTO t (s, v) VALUES (NULL, NULL)"); err != nil {
		t.Fatal(err)
	}
	row, err = r.QueryRow("SELECT s, v FROM t WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != nil || row[1] != nil {
		t.Errorf("nulls = %v", row)
	}
	// Tables round-trips.
	if tables := r.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Errorf("tables = %v", tables)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	r, err := Dial(addr) // bare host:port also accepted
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("BOGUS SQL"); err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Errorf("want remote parse error, got %v", err)
	}
	if _, err := r.Query("SELECT * FROM missing"); err == nil {
		t.Error("missing table should error remotely")
	}
	if _, err := r.QueryRow("SELECT 1 FROM missing"); err == nil {
		t.Error("queryrow on missing table should error")
	}
	// After Close, calls fail cleanly.
	r.Close()
	if _, err := r.Exec("SELECT 1"); err == nil {
		t.Error("closed remote should fail")
	}
	if r.Tables() != nil {
		t.Error("closed remote Tables should be nil")
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	db, addr := startServer(t)
	if _, err := db.Exec("CREATE TABLE c (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			for i := 0; i < 50; i++ {
				if _, err := r.Exec("INSERT INTO c (n) VALUES (?)", g*1000+i); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	row, err := db.QueryRow("SELECT COUNT(*) FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(200) {
		t.Errorf("count = %v, want 200", row[0])
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("kdb://127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}
