package kdb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func chunkFixture(t *testing.T) (*DB, []byte) {
	t.Helper()
	db := memDB(t)
	mustExec(t, db, "CREATE TABLE alpha (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE INDEX idx_alpha_v ON alpha (v)")
	for i := 0; i < 700; i++ { // spans two chunks at DefaultChunkLines
		mustExec(t, db, "INSERT INTO alpha (v) VALUES (?)", fmt.Sprintf("a%03d", i))
	}
	mustExec(t, db, "CREATE TABLE beta (id INTEGER PRIMARY KEY, x REAL)")
	mustExec(t, db, "INSERT INTO beta (x) VALUES (?)", 2.5)
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return db, buf.Bytes()
}

func TestChunkSnapshotConcatenationIsIdentity(t *testing.T) {
	_, data := chunkFixture(t)
	chunks, err := ChunkSnapshot(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cat bytes.Buffer
	for _, c := range chunks {
		cat.Write(c.Data)
	}
	if !bytes.Equal(cat.Bytes(), data) {
		t.Fatal("concatenated chunks do not reproduce the snapshot stream")
	}
	// Boundaries: every chunk belongs to one table (or the meta record),
	// alpha spans multiple chunks, and chunking is deterministic.
	tables := map[string]int{}
	metas := 0
	for _, c := range chunks {
		if c.Meta {
			metas++
			continue
		}
		tables[c.Table]++
	}
	if metas != 1 {
		t.Fatalf("meta chunks = %d, want 1", metas)
	}
	if tables["alpha"] < 2 {
		t.Fatalf("alpha chunks = %d, want >= 2 (700 rows over %d-line chunks)", tables["alpha"], DefaultChunkLines)
	}
	if tables["beta"] != 1 {
		t.Fatalf("beta chunks = %d, want 1", tables["beta"])
	}
	again, err := ChunkSnapshot(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if chunks[i].Hash != again[i].Hash {
			t.Fatalf("chunking not deterministic at %d", i)
		}
	}
}

func TestChunkSnapshotRejectsCorruptStream(t *testing.T) {
	_, data := chunkFixture(t)
	if _, err := ChunkSnapshot(data[:len(data)-3], 0); err == nil {
		t.Error("truncated stream must error")
	}
	bad := append([]byte("{not json\n"), data...)
	if _, err := ChunkSnapshot(bad, 0); err == nil {
		t.Error("corrupt record must error")
	}
}

func TestReassembleSnapshot(t *testing.T) {
	_, data := chunkFixture(t)
	chunks, err := ChunkSnapshot(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]ChunkRef, len(chunks))
	for i, c := range chunks {
		refs[i] = ChunkRef{Table: c.Table, Hash: c.Hash, Size: len(c.Data), Meta: c.Meta}
	}
	// Lookup serves even chunks locally; odd chunks ship.
	var shipped [][]byte
	local := map[string][]byte{}
	for i, c := range chunks {
		if i%2 == 0 {
			local[c.Hash] = c.Data
		} else {
			shipped = append(shipped, c.Data)
		}
	}
	out, err := ReassembleSnapshot(refs, shipped, func(h string) []byte { return local[h] })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("reassembled snapshot differs from original")
	}

	// Error paths: shortfall, hash mismatch, unconsumed chunks.
	if _, err := ReassembleSnapshot(refs, nil, func(string) []byte { return nil }); err == nil {
		t.Error("missing chunks must error")
	}
	tampered := append([][]byte(nil), shipped...)
	tampered[0] = []byte("{\"sql\":\"evil\"}\n")
	if _, err := ReassembleSnapshot(refs, tampered, func(h string) []byte { return local[h] }); err == nil ||
		!strings.Contains(err.Error(), "hash") {
		t.Errorf("tampered chunk must fail hash verification, got %v", err)
	}
	extra := append(append([][]byte(nil), shipped...), []byte("x\n"))
	if _, err := ReassembleSnapshot(refs, extra, func(h string) []byte { return local[h] }); err == nil {
		t.Error("unconsumed shipped chunks must error")
	}
}

// TestSnapshotDeltaWire drives the "delta" verb end to end: a client that
// already holds some chunks receives only the missing ones and rebuilds
// the exact snapshot.
func TestSnapshotDeltaWire(t *testing.T) {
	db, addr := startServer(t)
	mustExec(t, db, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, "INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("v%d", i))
	}
	var want bytes.Buffer
	wantLSN, err := db.WriteSnapshot(&want)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := ChunkSnapshot(want.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}

	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Cold client: everything ships.
	manifest, shipped, lsn, err := r.SnapshotDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != wantLSN || len(shipped) != len(chunks) {
		t.Fatalf("cold delta: lsn=%d shipped=%d, want lsn=%d shipped=%d", lsn, len(shipped), wantLSN, len(chunks))
	}
	out, err := ReassembleSnapshot(manifest, shipped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want.Bytes()) {
		t.Fatal("cold delta did not reassemble the snapshot")
	}

	// Warm client holding all but the meta chunk: only that ships.
	have := map[string][]byte{}
	var keys []string
	for _, c := range chunks {
		if c.Meta {
			continue
		}
		have[c.Hash] = c.Data
		keys = append(keys, c.Hash)
	}
	manifest, shipped, _, err = r.SnapshotDelta(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(shipped) != 1 {
		t.Fatalf("warm delta shipped %d chunks, want just the meta record", len(shipped))
	}
	out, err = ReassembleSnapshot(manifest, shipped, func(h string) []byte { return have[h] })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want.Bytes()) {
		t.Fatal("warm delta did not reassemble the snapshot")
	}
}
