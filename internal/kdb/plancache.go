package kdb

// Parsed-statement cache. The schema layer issues the same handful of SQL
// strings thousands of times with different arguments; caching the parsed
// AST by SQL text skips the lexer and parser on every repeat. Statements
// are immutable after parsing (execution never writes into the AST), so
// one cached statement can serve concurrent executions.

import "sync"

// planCacheLimit bounds the cache; on overflow the whole map is dropped,
// which is simpler than LRU and fine for a working set this small.
const planCacheLimit = 512

var planCache = struct {
	sync.RWMutex
	m map[string]any
}{m: make(map[string]any)}

// parseCached parses src, consulting and populating the statement cache.
// Parse errors are not cached: a malformed statement is not a hot path.
func parseCached(src string) (any, error) {
	planCache.RLock()
	stmt, ok := planCache.m[src]
	planCache.RUnlock()
	if ok {
		metPlanCacheHits.Inc()
		return stmt, nil
	}
	metPlanCacheMisses.Inc()
	stmt, err := parse(src)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	if len(planCache.m) >= planCacheLimit {
		planCache.m = make(map[string]any, planCacheLimit)
	}
	planCache.m[src] = stmt
	planCache.Unlock()
	return stmt, nil
}
