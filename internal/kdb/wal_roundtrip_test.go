package kdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// applyRandomOps drives db through a pseudo-random mutation history:
// table creation, typed inserts (including NULLs), updates, deletes, and
// secondary indexes. Failed statements (e.g. a delete on a table not yet
// created) are fine — only committed mutations reach the log.
func applyRandomOps(db *DB, rng *rand.Rand, n int) {
	tables := 0
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op == 0 || tables == 0:
			db.Exec(fmt.Sprintf(
				"CREATE TABLE t%d (id INTEGER PRIMARY KEY, n INTEGER, r REAL, s TEXT)", tables))
			tables++
		case op == 1 && tables > 0:
			db.Exec(fmt.Sprintf("CREATE INDEX ix%d_n ON t%d (n)", rng.Intn(tables), rng.Intn(tables)))
		case op <= 6:
			var sv any = fmt.Sprintf("s-%d", rng.Intn(1000))
			if rng.Intn(5) == 0 {
				sv = nil
			}
			db.Exec(fmt.Sprintf("INSERT INTO t%d (n, r, s) VALUES (?, ?, ?)", rng.Intn(tables)),
				int64(rng.Intn(100)), rng.Float64()*1e3, sv)
		case op == 7:
			db.Exec(fmt.Sprintf("UPDATE t%d SET n = ? WHERE n = ?", rng.Intn(tables)),
				int64(rng.Intn(100)), int64(rng.Intn(100)))
		default:
			db.Exec(fmt.Sprintf("DELETE FROM t%d WHERE n = ?", rng.Intn(tables)),
				int64(rng.Intn(100)))
		}
	}
}

func snapshotBytes(t testing.TB, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWALRoundTripProperty checks the property the replication design
// rests on: for arbitrary mutation histories, replaying the on-disk log
// reproduces the exact state (byte-identical snapshot, same LSN), and
// restoring a snapshot reproduces it again.
func TestWALRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		path := filepath.Join(t.TempDir(), "p.kdb")
		db, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		applyRandomOps(db, rand.New(rand.NewSource(seed)), 200)
		want := snapshotBytes(t, db)
		lsn := db.LSN()
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		reopened, err := Open(path)
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if got := snapshotBytes(t, reopened); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: replayed state differs from original", seed)
		}
		if reopened.LSN() != lsn {
			t.Fatalf("seed %d: replayed LSN = %d, want %d", seed, reopened.LSN(), lsn)
		}
		reopened.Close()

		restored, err := Open("")
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.RestoreSnapshot(want); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		if got := snapshotBytes(t, restored); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: restored state differs from original", seed)
		}
		if restored.LSN() != lsn {
			t.Fatalf("seed %d: restored LSN = %d, want %d", seed, restored.LSN(), lsn)
		}
		restored.Close()
	}
}

// FuzzWALRoundTrip feeds arbitrary seeds and history lengths through the
// same round-trip property.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(50))
	f.Add(int64(42), uint8(200))
	f.Add(int64(-7), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		path := filepath.Join(t.TempDir(), "f.kdb")
		db, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		applyRandomOps(db, rand.New(rand.NewSource(seed)), int(n))
		want := snapshotBytes(t, db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer reopened.Close()
		if got := snapshotBytes(t, reopened); !bytes.Equal(got, want) {
			t.Fatal("replayed state differs from original")
		}
	})
}

// TestSnapshotZeroLSNMetaRecord pins down the meta-record edge case: a
// snapshot representing LSN 0 with no auto-increment high-water marks has a
// meta record with no distinguishing fields, which the legacy
// infer-from-fields classification mistook for a replayable mutation. The
// explicit tag must round-trip it as "no history".
func TestSnapshotZeroLSNMetaRecord(t *testing.T) {
	// The exact shape the engine serializes for a schema-only, zero-history
	// database — e.g. a replica snapshotted before its first commit.
	snap := []byte(`{"sql":"CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)"}` + "\n" +
		`{"meta":true}` + "\n")

	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Seed unrelated history so the restore provably resets both state and
	// LSN rather than leaving them untouched.
	if _, err := db.Exec("CREATE TABLE old (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if err := db.RestoreSnapshot(snap); err != nil {
		t.Fatalf("zero-LSN meta record rejected: %v", err)
	}
	if got := db.LSN(); got != 0 {
		t.Errorf("restored LSN = %d, want 0", got)
	}
	if tabs := db.Tables(); len(tabs) != 1 || tabs[0] != "kv" {
		t.Errorf("restored tables = %v, want [kv]", tabs)
	}
	if got := snapshotBytes(t, db); !bytes.Equal(got, snap) {
		t.Errorf("zero-LSN snapshot did not round-trip byte-identically:\ngot  %q\nwant %q", got, snap)
	}
}

// TestSnapshotLegacyMetaRecord keeps untagged meta records from
// pre-explicit-tag snapshots restoring correctly.
func TestSnapshotLegacyMetaRecord(t *testing.T) {
	legacy := []byte(`{"sql":"CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)"}` + "\n" +
		`{"auto_ids":{"kv":5},"base_lsn":7}` + "\n")
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.RestoreSnapshot(legacy); err != nil {
		t.Fatalf("legacy meta record rejected: %v", err)
	}
	if got := db.LSN(); got != 7 {
		t.Errorf("restored LSN = %d, want 7", got)
	}
	res, err := db.Exec("INSERT INTO kv (v) VALUES (?)", "x")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 6 {
		t.Errorf("auto id after restore = %d, want 6 (high-water mark 5 honored)", res.LastInsertID)
	}
}
