package kdb

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// Snapshot chunking. A WriteSnapshot stream is a deterministic sequence of
// log records: per table (sorted), one CREATE TABLE, its CREATE INDEX
// statements, one INSERT per row, and a trailing meta record. Chunking
// splits that byte stream into content-addressed segments that reset at
// every table boundary, so two snapshots that differ in one table still
// share every other table's chunks. Chunks are the storage unit of the
// vcs commit graph and the transfer unit of delta replication: a follower
// (or a new commit) only needs the segments it does not already hold.

// DefaultChunkLines is the number of log records per content chunk. The
// first chunk of a table also carries its CREATE TABLE / CREATE INDEX
// records; boundaries are counted from the start of each table, so
// appending rows to a table leaves its earlier chunks byte-identical.
const DefaultChunkLines = 512

// SnapshotChunk is one content-addressed segment of a snapshot stream.
type SnapshotChunk struct {
	// Table is the (as-written) name of the table the segment belongs to;
	// empty for the meta record chunk.
	Table string
	// Meta marks the chunk holding the snapshot's trailing meta record
	// (auto-increment high-water marks and base LSN).
	Meta bool
	// Hash is the lowercase hex SHA-256 of Data.
	Hash string
	// Data is the exact byte range of the stream: whole newline-terminated
	// log records.
	Data []byte
	// Lines is the number of log records in the chunk.
	Lines int
}

// ChunkSnapshot splits a WriteSnapshot stream into content-addressed
// chunks. linesPerChunk bounds the records per chunk (0 means
// DefaultChunkLines); boundaries additionally reset at every CREATE TABLE
// record, and meta records always get their own chunk. Concatenating the
// chunks' Data in order reproduces the input byte-for-byte.
func ChunkSnapshot(data []byte, linesPerChunk int) ([]SnapshotChunk, error) {
	if linesPerChunk <= 0 {
		linesPerChunk = DefaultChunkLines
	}
	var chunks []SnapshotChunk
	var cur SnapshotChunk
	var buf bytes.Buffer
	flush := func() {
		if buf.Len() == 0 {
			return
		}
		sum := sha256.Sum256(buf.Bytes())
		cur.Hash = hex.EncodeToString(sum[:])
		cur.Data = append([]byte(nil), buf.Bytes()...)
		chunks = append(chunks, cur)
		buf.Reset()
		cur = SnapshotChunk{Table: cur.Table}
	}
	rest := data
	for len(rest) > 0 {
		var line []byte
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl+1], rest[nl+1:]
		} else {
			// A snapshot stream is newline-terminated; a trailing partial
			// line means the input was truncated.
			return nil, fmt.Errorf("kdb: chunk snapshot: truncated record %q", rest)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e walEntry
		if err := json.Unmarshal(bytes.TrimSpace(line), &e); err != nil {
			return nil, fmt.Errorf("kdb: chunk snapshot: corrupt record: %w", err)
		}
		switch {
		case e.isMeta():
			flush()
			cur = SnapshotChunk{Meta: true}
		case strings.HasPrefix(e.SQL, "CREATE TABLE "):
			flush()
			name := e.SQL[len("CREATE TABLE "):]
			if i := strings.IndexAny(name, " ("); i >= 0 {
				name = name[:i]
			}
			cur = SnapshotChunk{Table: name}
		case cur.Lines >= linesPerChunk:
			flush()
		}
		buf.Write(line)
		cur.Lines++
		if cur.Meta {
			flush()
			cur = SnapshotChunk{}
		}
	}
	flush()
	return chunks, nil
}

// SnapshotRecord is one decoded record of a snapshot (or WAL) stream, in
// the engine's value set — the exported counterpart of the internal replay
// entry, used by the vcs layer to replay individual chunk records through
// the public Exec/Batch path.
type SnapshotRecord struct {
	SQL     string
	Args    []any
	Meta    bool
	AutoIDs map[string]int64
	BaseLSN int64
}

// DecodeSnapshotRecords decodes a snapshot (or chunk) byte range into its
// records.
func DecodeSnapshotRecords(data []byte) ([]SnapshotRecord, error) {
	entries, err := parseWALRecords("chunk", data)
	if err != nil {
		return nil, err
	}
	out := make([]SnapshotRecord, 0, len(entries))
	for _, e := range entries {
		out = append(out, SnapshotRecord{
			SQL:     e.SQL,
			Args:    e.Args,
			Meta:    e.Meta,
			AutoIDs: e.AutoIDs,
			BaseLSN: e.BaseLSN,
		})
	}
	return out, nil
}

// EncodeSnapshotMeta renders a snapshot meta record exactly as
// snapshotLocked writes it (auto-increment high-water marks plus base
// LSN, newline-terminated), so externally composed streams — a vcs
// checkout, a delta-reassembled snapshot — restore through the same
// parser with the same semantics. Map keys marshal sorted, so the
// encoding is deterministic.
func EncodeSnapshotMeta(autoIDs map[string]int64, baseLSN int64) ([]byte, error) {
	data, err := json.Marshal(walEntry{AutoIDs: autoIDs, BaseLSN: baseLSN, Meta: true})
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
