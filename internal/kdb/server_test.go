package kdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServerFull is like startServer but hands back the Server so tests
// can exercise its lifecycle.
func startServerFull(t *testing.T, srv *Server) string {
	t.Helper()
	if srv.DB == nil {
		db, err := Open("")
		if err != nil {
			t.Fatal(err)
		}
		srv.DB = db
	}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return l.Addr().String()
}

func TestServerGracefulShutdown(t *testing.T) {
	srv := &Server{}
	addr := startServerFull(t, srv)
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("CREATE TABLE s (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The idle client connection was closed; a non-idempotent request
	// surfaces the transport error rather than retrying.
	if _, err := r.Exec("INSERT INTO s (id) VALUES (1)"); err == nil {
		t.Error("exec against a shut-down server should fail")
	}
	// New dials are refused.
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("listener should be closed after Shutdown")
	}
	// Serve after Shutdown refuses.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l); err == nil {
		t.Error("Serve on a shut-down server should error")
	}
}

func TestServerMaxConns(t *testing.T) {
	srv := &Server{MaxConns: 1}
	addr := startServerFull(t, srv)
	r1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if _, err := r1.Exec("CREATE TABLE m (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	// Second connection is over the cap: it gets a structured refusal.
	r2, err := Dial(addr)
	if err != nil {
		t.Fatal(err) // TCP accept itself succeeds
	}
	defer r2.Close()
	_, err = r2.Query("SELECT id FROM m")
	if err == nil || !strings.Contains(err.Error(), "connection limit") {
		t.Errorf("over-limit query error = %v, want connection limit refusal", err)
	}
	// The first client is unaffected.
	if _, err := r1.Query("SELECT id FROM m"); err != nil {
		t.Errorf("in-limit client broken: %v", err)
	}
	// Once the first client leaves, capacity frees up.
	r1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		r3, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, qerr := r3.Query("SELECT id FROM m")
		r3.Close()
		if qerr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never freed: %v", qerr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerMalformedRequest(t *testing.T) {
	srv := &Server{}
	addr := startServerFull(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp wireResponse
	if err := json.NewDecoder(bufio.NewReader(c)).Decode(&resp); err != nil {
		t.Fatalf("no structured response to malformed request: %v", err)
	}
	if !strings.Contains(resp.Err, "malformed request") {
		t.Errorf("response = %+v, want malformed-request error", resp)
	}
	// The server closes the connection afterwards.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("connection should be closed after a malformed request")
	}
}

// TestRemoteReconnect: after the server drops an idle connection, the next
// idempotent request transparently redials; mutations report the break but
// recover on the following request.
func TestRemoteReconnect(t *testing.T) {
	srv := &Server{IdleTimeout: 50 * time.Millisecond}
	addr := startServerFull(t, srv)
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("CREATE TABLE rc (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("INSERT INTO rc (v) VALUES ('x')"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // server idle-closes the connection
	rows, err := r.Query("SELECT v FROM rc")
	if err != nil {
		t.Fatalf("query should reconnect transparently: %v", err)
	}
	if rows.Len() != 1 {
		t.Errorf("rows = %d, want 1", rows.Len())
	}
	time.Sleep(200 * time.Millisecond)
	if tables := r.Tables(); len(tables) != 1 || tables[0] != "rc" {
		t.Errorf("Tables after idle close = %v", tables)
	}
	time.Sleep(200 * time.Millisecond)
	// A mutation on a broken connection is NOT retried...
	if _, err := r.Exec("INSERT INTO rc (v) VALUES ('y')"); err == nil {
		t.Error("exec on a broken connection should surface the error")
	}
	// ...but the client recovers on the next request.
	if _, err := r.Exec("INSERT INTO rc (v) VALUES ('z')"); err != nil {
		t.Errorf("exec after lazy reconnect: %v", err)
	}
	row, err := r.QueryRow("SELECT COUNT(*) FROM rc")
	if err != nil || row[0] != int64(2) {
		t.Errorf("count = %v, %v, want 2", row, err)
	}
}

// TestApplicationErrorKeepsConnection: SQL errors must not tear down the
// client connection (only transport failures do).
func TestApplicationErrorKeepsConnection(t *testing.T) {
	srv := &Server{}
	addr := startServerFull(t, srv)
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("BOGUS"); err == nil {
		t.Fatal("parse error expected")
	}
	r.mu.Lock()
	alive := r.conn != nil
	r.mu.Unlock()
	if !alive {
		t.Error("application error dropped the connection")
	}
}

func TestRemoteErrNoRows(t *testing.T) {
	srv := &Server{}
	addr := startServerFull(t, srv)
	r, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("CREATE TABLE e (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	_, err = r.QueryRow("SELECT id FROM e WHERE id = 7")
	if !errors.Is(err, ErrNoRows) {
		t.Errorf("remote QueryRow on empty result = %v, want ErrNoRows", err)
	}
}

// TestRemoteClientsWithCompact runs parallel remote clients against a
// file-backed database that is concurrently compacted; run with -race.
func TestRemoteClientsWithCompact(t *testing.T) {
	db, err := Open(t.TempDir() + "/served.db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE c (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	srv := &Server{DB: db}
	addr := startServerFull(t, srv)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			for i := 0; i < 30; i++ {
				if _, err := r.Exec("INSERT INTO c (n) VALUES (?)", g*100+i); err != nil {
					errs <- err
					return
				}
				if _, err := r.Query("SELECT n FROM c WHERE id = ?", i+1); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := db.Compact(); err != nil {
				errs <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	row, err := db.QueryRow("SELECT COUNT(*) FROM c")
	if err != nil || row[0] != int64(90) {
		t.Errorf("count = %v, %v, want 90", row, err)
	}
}
