package kdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// The paper's persistence phase stores knowledge "either directly as a
// local SQLite database or by specifying a SQL connection URL remotely"
// (§V-C). This file provides that remote path: a line-delimited JSON
// protocol exposing Exec/Query over TCP, a Server wrapping a local DB, and
// a Remote client satisfying the same Conn interface as *DB, so the
// knowledge store works identically against either.

// Conn is the database surface the persistence layer programs against;
// *DB (local) and *Remote (network) both implement it.
type Conn interface {
	Exec(query string, args ...any) (Result, error)
	Query(query string, args ...any) (*Rows, error)
	QueryRow(query string, args ...any) ([]any, error)
	Tables() []string
	Close() error
}

var (
	_ Conn = (*DB)(nil)
	_ Conn = (*Remote)(nil)
)

// wireRequest is one client->server message.
type wireRequest struct {
	Op   string   `json:"op"` // "exec", "query", "tables"
	SQL  string   `json:"sql,omitempty"`
	Args []walArg `json:"args,omitempty"`
}

// wireResponse is one server->client message.
type wireResponse struct {
	Err          string     `json:"err,omitempty"`
	LastInsertID int64      `json:"last_id,omitempty"`
	RowsAffected int        `json:"affected,omitempty"`
	Columns      []string   `json:"cols,omitempty"`
	Rows         [][]walArg `json:"rows,omitempty"`
	Tables       []string   `json:"tables,omitempty"`
}

// Server exposes a local database over the wire protocol.
type Server struct {
	DB *DB
}

// Serve accepts connections until the listener closes. Each connection
// handles requests sequentially; connections are served concurrently.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // client went away or sent garbage; drop the connection
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req wireRequest) wireResponse {
	args, err := decodeArgs(req.Args)
	if err != nil {
		return wireResponse{Err: err.Error()}
	}
	switch req.Op {
	case "exec":
		res, err := s.DB.Exec(req.SQL, args...)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{LastInsertID: res.LastInsertID, RowsAffected: res.RowsAffected}
	case "query":
		rows, err := s.DB.Query(req.SQL, args...)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		resp := wireResponse{Columns: rows.Columns}
		for _, row := range rows.All() {
			wr, err := encodeArgs(row)
			if err != nil {
				return wireResponse{Err: err.Error()}
			}
			resp.Rows = append(resp.Rows, wr)
		}
		return resp
	case "tables":
		return wireResponse{Tables: s.DB.Tables()}
	}
	return wireResponse{Err: fmt.Sprintf("kdb: unknown wire op %q", req.Op)}
}

// ListenAndServe serves the database on addr until the process exits or
// the listener fails. It returns the bound listener so callers can learn
// the ephemeral port and close it for shutdown.
func (s *Server) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kdb: listen %s: %w", addr, err)
	}
	go s.Serve(l) //nolint:errcheck — Serve exits when l closes
	return l, nil
}

// Remote is a client for a served database. It is safe for concurrent use;
// requests are serialized over one connection.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a kdb server. The address accepts an optional kdb://
// scheme prefix — the paper's "SQL connection URL".
func Dial(addr string) (*Remote, error) {
	hostport := addr
	if len(hostport) > 6 && hostport[:6] == "kdb://" {
		hostport = hostport[6:]
	}
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("kdb: dial %s: %w", addr, err)
	}
	return &Remote{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

func (r *Remote) roundTrip(req wireRequest) (wireResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return wireResponse{}, fmt.Errorf("kdb: remote connection closed")
	}
	if err := r.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("kdb: send: %w", err)
	}
	var resp wireResponse
	if err := r.dec.Decode(&resp); err != nil {
		return wireResponse{}, fmt.Errorf("kdb: receive: %w", err)
	}
	if resp.Err != "" {
		return wireResponse{}, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Exec implements Conn.
func (r *Remote) Exec(query string, args ...any) (Result, error) {
	wa, err := encodeArgs(args)
	if err != nil {
		return Result{}, err
	}
	resp, err := r.roundTrip(wireRequest{Op: "exec", SQL: query, Args: wa})
	if err != nil {
		return Result{}, err
	}
	return Result{LastInsertID: resp.LastInsertID, RowsAffected: resp.RowsAffected}, nil
}

// Query implements Conn.
func (r *Remote) Query(query string, args ...any) (*Rows, error) {
	wa, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	resp, err := r.roundTrip(wireRequest{Op: "query", SQL: query, Args: wa})
	if err != nil {
		return nil, err
	}
	rows := &Rows{Columns: resp.Columns}
	for _, wr := range resp.Rows {
		vals, err := decodeArgs(wr)
		if err != nil {
			return nil, err
		}
		rows.rows = append(rows.rows, vals)
	}
	return rows, nil
}

// QueryRow implements Conn.
func (r *Remote) QueryRow(query string, args ...any) ([]any, error) {
	rows, err := r.Query(query, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, fmt.Errorf("kdb: no rows")
	}
	return rows.Row(), nil
}

// Tables implements Conn.
func (r *Remote) Tables() []string {
	resp, err := r.roundTrip(wireRequest{Op: "tables"})
	if err != nil {
		return nil
	}
	return resp.Tables
}

// Close implements Conn.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}
