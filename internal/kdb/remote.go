package kdb

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// The paper's persistence phase stores knowledge "either directly as a
// local SQLite database or by specifying a SQL connection URL remotely"
// (§V-C). This file provides that remote path: a line-delimited JSON
// protocol exposing Exec/Query over TCP, a Server wrapping a local DB, and
// a Remote client satisfying the same Conn interface as *DB, so the
// knowledge store works identically against either.
//
// Server lifecycle: Serve accepts until the listener closes; Shutdown
// stops accepting, closes idle connections immediately, lets in-flight
// requests finish (bounded by the context), then force-closes stragglers.
// Each connection gets a read deadline between requests (IdleTimeout) and
// a write deadline per response (WriteTimeout), and the number of
// concurrently served connections is capped at MaxConns — excess dials
// receive a structured error response and are closed. Malformed requests
// likewise receive a wireResponse carrying the parse error instead of a
// silent hangup.

// Conn is the database surface the persistence layer programs against;
// *DB (local) and *Remote (network) both implement it.
type Conn interface {
	Exec(query string, args ...any) (Result, error)
	Query(query string, args ...any) (*Rows, error)
	QueryRow(query string, args ...any) ([]any, error)
	Tables() []string
	Close() error
}

// TracedConn is the optional tracing-aware surface of a Conn: the same
// Query/Exec, plus an explicit trace context to attach the work to. *DB and
// *Remote implement it, as do the shard coordinator and the repl router;
// layers discover it by type assertion and fall back to the plain calls, so
// tracing degrades gracefully across mixed-version components.
type TracedConn interface {
	QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*Rows, error)
	ExecTraced(tc telemetry.TraceContext, query string, args ...any) (Result, error)
}

var (
	_ Conn       = (*DB)(nil)
	_ Conn       = (*Remote)(nil)
	_ TracedConn = (*DB)(nil)
	_ TracedConn = (*Remote)(nil)
)

// connQuery routes a query through c's traced surface when a trace is
// active and c supports it; otherwise the plain path.
func connQuery(c Conn, tc telemetry.TraceContext, query string, args ...any) (*Rows, error) {
	if tc.Valid() {
		if t, ok := c.(TracedConn); ok {
			return t.QueryTraced(tc, query, args...)
		}
	}
	return c.Query(query, args...)
}

// connExec is connQuery for mutations.
func connExec(c Conn, tc telemetry.TraceContext, query string, args ...any) (Result, error) {
	if tc.Valid() {
		if t, ok := c.(TracedConn); ok {
			return t.ExecTraced(tc, query, args...)
		}
	}
	return c.Exec(query, args...)
}

// wireRequest is one client->server message.
type wireRequest struct {
	Op   string   `json:"op"` // "exec", "query", "tables", "status", "snapshot", "delta", "replicate", "shardmap"
	SQL  string   `json:"sql,omitempty"`
	Args []walArg `json:"args,omitempty"`
	// AfterLSN is the replication offset for the "replicate" op: the
	// stream delivers every committed record with a greater LSN.
	AfterLSN int64 `json:"after_lsn,omitempty"`
	// Have lists the snapshot chunk hashes the client already holds, for
	// the "delta" op: the response manifest references them instead of
	// re-shipping their bytes.
	Have []string `json:"have,omitempty"`
	// TraceID and SpanID propagate the caller's trace context so server-side
	// work joins the client's trace. Both are optional: old clients omit
	// them (untraced request), and old servers ignore them — json decoding
	// drops unknown fields — so mixed-version peers interoperate, merely
	// losing the server-side spans.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// wireResponse is one server->client message.
type wireResponse struct {
	Err          string     `json:"err,omitempty"`
	LastInsertID int64      `json:"last_id,omitempty"`
	RowsAffected int        `json:"affected,omitempty"`
	Columns      []string   `json:"cols,omitempty"`
	Rows         [][]walArg `json:"rows,omitempty"`
	Tables       []string   `json:"tables,omitempty"`
	LSN          int64      `json:"lsn,omitempty"`
	Role         string     `json:"role,omitempty"`
	Addr         string     `json:"addr,omitempty"`
	Snapshot     []byte     `json:"snapshot,omitempty"`
	// Epoch and ShardMap answer the "shardmap" verb: an opaque,
	// epoch-versioned partition map (the shard package defines its JSON
	// shape; kdb only transports it).
	Epoch    int64  `json:"epoch,omitempty"`
	ShardMap []byte `json:"shard_map,omitempty"`
	// Manifest and Chunks answer the "delta" verb: the ordered chunk
	// references of the current snapshot, plus data for exactly those
	// chunks the request's Have set did not cover.
	Manifest []ChunkRef `json:"manifest,omitempty"`
	Chunks   [][]byte   `json:"chunks,omitempty"`
}

// ChunkRef identifies one snapshot chunk in a delta manifest.
type ChunkRef struct {
	Table string `json:"t,omitempty"`
	Hash  string `json:"h"`
	Size  int    `json:"n"`
	Meta  bool   `json:"m,omitempty"`
}

// Server limits and deadlines used when the corresponding field is zero.
const (
	DefaultMaxConns          = 256
	DefaultIdleTimeout       = 5 * time.Minute
	DefaultWriteTimeout      = 30 * time.Second
	DefaultHeartbeatInterval = time.Second
)

// Server exposes a local database over the wire protocol.
type Server struct {
	DB *DB

	// Backend, when set, handles exec/query/tables instead of DB — it is
	// how a scatter-gather coordinator (or any other Conn) is served over
	// the same wire protocol. Replication verbs (snapshot, replicate)
	// need the real database and answer an error when only a Backend is
	// present. When both are nil the server refuses requests.
	Backend Conn

	// ShardMapFunc, when set, answers the "shardmap" verb with an
	// epoch-versioned partition map. Coordinator nodes serve their map
	// here so clients can fetch it and connect to the shards directly.
	ShardMapFunc func() (epoch int64, data []byte)

	// MaxConns caps concurrently served connections; dials beyond the cap
	// get an error response and are closed. 0 means DefaultMaxConns.
	MaxConns int
	// IdleTimeout bounds how long a connection may sit between requests
	// before the server closes it. 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. 0 means DefaultWriteTimeout.
	WriteTimeout time.Duration

	// Role is reported by the "status" verb: "primary" (the default) or
	// "replica".
	Role string
	// Advertise is the externally reachable address reported by the
	// "status" verb and /healthz, for deployments behind NAT or proxies.
	Advertise string
	// ReadOnly rejects "exec" requests — set on replicas, whose only
	// writer must be the replication apply loop, so a stray client
	// cannot fork the commit sequence.
	ReadOnly bool
	// HeartbeatInterval paces replication heartbeats while a stream is
	// idle. 0 means DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	wg        sync.WaitGroup
	closed    bool
	// done is closed by Shutdown so long-lived replication streams stop
	// promptly instead of waiting out their heartbeat timers.
	done chan struct{}
}

// serverConn tracks one accepted connection and whether a request is
// currently being served on it, so Shutdown can drain in-flight work while
// closing idle connections immediately.
type serverConn struct {
	c          net.Conn
	mu         sync.Mutex
	inFlight   bool
	closeAfter bool
}

func (s *Server) maxConns() int {
	if s.MaxConns > 0 {
		return s.MaxConns
	}
	return DefaultMaxConns
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return DefaultIdleTimeout
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return DefaultWriteTimeout
}

func (s *Server) heartbeatInterval() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

func (s *Server) role() string {
	if s.Role != "" {
		return s.Role
	}
	return "primary"
}

// initLocked lazily creates the server's shared state; s.mu must be held.
func (s *Server) initLocked() {
	if s.listeners == nil {
		s.listeners = map[net.Listener]struct{}{}
	}
	if s.conns == nil {
		s.conns = map[*serverConn]struct{}{}
	}
	if s.done == nil {
		s.done = make(chan struct{})
	}
}

// Serve accepts connections until the listener closes (or Shutdown is
// called, which closes it). Each connection handles requests sequentially;
// connections are served concurrently. After Shutdown, Serve returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("kdb: server is shut down")
	}
	s.initLocked()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{c: conn}
		s.mu.Lock()
		over := len(s.conns) >= s.maxConns()
		if !over {
			s.conns[sc] = struct{}{}
			s.wg.Add(1)
		}
		s.mu.Unlock()
		if over {
			// Refuse politely: one structured error, then close.
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
			json.NewEncoder(conn).Encode(wireResponse{Err: "kdb: server connection limit reached"})
			conn.Close()
			continue
		}
		go s.handle(sc)
	}
}

func (s *Server) handle(sc *serverConn) {
	metServerOpenConns.Add(1)
	defer func() {
		metServerOpenConns.Add(-1)
		sc.c.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		s.wg.Done()
	}()
	dec := json.NewDecoder(bufio.NewReader(sc.c))
	enc := json.NewEncoder(sc.c)
	for {
		sc.c.SetReadDeadline(time.Now().Add(s.idleTimeout()))
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			if err == io.EOF || errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) {
				return // timeout or transport failure; nothing to tell the peer
			}
			// Malformed request: report the error instead of hanging up
			// silently. The decoder's state is unreliable after a syntax
			// error, so the connection closes after the response.
			sc.c.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
			enc.Encode(wireResponse{Err: "kdb: malformed request: " + err.Error()})
			return
		}
		if req.Op == "replicate" {
			if s.DB == nil {
				sc.c.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
				enc.Encode(wireResponse{Err: "kdb: this node serves no local database to replicate"})
				return
			}
			// The connection becomes a one-way stream; it stays "idle"
			// from Shutdown's point of view, so shutdown closes it
			// immediately and the follower re-syncs elsewhere.
			s.serveReplicate(sc, req)
			return
		}
		sc.mu.Lock()
		sc.inFlight = true
		sc.mu.Unlock()
		resp := s.dispatch(req)
		sc.c.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		err := enc.Encode(resp)
		sc.mu.Lock()
		sc.inFlight = false
		drained := sc.closeAfter
		sc.mu.Unlock()
		if err != nil || drained {
			return
		}
	}
}

// conn is the request-serving connection: the explicit Backend when set,
// the local database otherwise.
func (s *Server) conn() Conn {
	if s.Backend != nil {
		return s.Backend
	}
	return s.DB
}

// traceNode names this server in spans: the advertised address when known,
// the role otherwise.
func (s *Server) traceNode() string {
	if s.Advertise != "" {
		return s.Advertise
	}
	return s.role()
}

func (s *Server) dispatch(req wireRequest) wireResponse {
	metServerRequests.Inc()
	args, err := decodeArgs(req.Args)
	if err != nil {
		return wireResponse{Err: err.Error()}
	}
	switch req.Op {
	case "exec":
		if s.ReadOnly {
			return wireResponse{Err: "kdb: read-only replica rejects mutations"}
		}
		hop := telemetry.StartHop(telemetry.TraceContext{TraceID: req.TraceID, SpanID: req.SpanID}, "server.exec")
		hop.SetNode(s.traceNode())
		hop.SetSQL(req.SQL)
		res, err := connExec(s.conn(), hop.Context(), req.SQL, args...)
		if err != nil {
			hop.Fail(err)
			return wireResponse{Err: err.Error()}
		}
		hop.AttrInt("rows_affected", int64(res.RowsAffected))
		hop.End()
		return wireResponse{LastInsertID: res.LastInsertID, RowsAffected: res.RowsAffected, LSN: res.LSN}
	case "status":
		st := wireResponse{Role: s.role(), Addr: s.Advertise}
		if s.DB != nil {
			st.LSN = s.DB.LSN()
		} else if l, ok := s.Backend.(interface{ LSN() int64 }); ok {
			st.LSN = l.LSN()
		}
		return st
	case "snapshot":
		if s.DB == nil {
			return wireResponse{Err: "kdb: this node serves no local database to snapshot"}
		}
		var buf bytes.Buffer
		lsn, err := s.DB.WriteSnapshot(&buf)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		metReplSnapshotBytes.Add(int64(buf.Len()))
		return wireResponse{Snapshot: buf.Bytes(), LSN: lsn}
	case "delta":
		// Incremental snapshot: the full manifest of the current snapshot's
		// content-addressed chunks, with bytes only for the segments the
		// client does not already hold. Reassembling manifest order yields
		// the exact WriteSnapshot stream, so delta catch-up converges
		// byte-identically to a full snapshot transfer.
		if s.DB == nil {
			return wireResponse{Err: "kdb: this node serves no local database to snapshot"}
		}
		var buf bytes.Buffer
		lsn, err := s.DB.WriteSnapshot(&buf)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		chunks, err := ChunkSnapshot(buf.Bytes(), 0)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		have := make(map[string]bool, len(req.Have))
		for _, h := range req.Have {
			have[h] = true
		}
		resp := wireResponse{LSN: lsn}
		shipped := 0
		for _, c := range chunks {
			resp.Manifest = append(resp.Manifest, ChunkRef{Table: c.Table, Hash: c.Hash, Size: len(c.Data), Meta: c.Meta})
			if !have[c.Hash] {
				resp.Chunks = append(resp.Chunks, c.Data)
				shipped += len(c.Data)
			}
		}
		metReplSnapshotBytes.Add(int64(shipped))
		return resp
	case "query":
		hop := telemetry.StartHop(telemetry.TraceContext{TraceID: req.TraceID, SpanID: req.SpanID}, "server.query")
		hop.SetNode(s.traceNode())
		hop.SetSQL(req.SQL)
		rows, err := connQuery(s.conn(), hop.Context(), req.SQL, args...)
		if err != nil {
			hop.Fail(err)
			return wireResponse{Err: err.Error()}
		}
		hop.AttrInt("rows", int64(rows.Len()))
		hop.End()
		resp := wireResponse{Columns: rows.Columns}
		for _, row := range rows.All() {
			wr, err := encodeArgs(row)
			if err != nil {
				return wireResponse{Err: err.Error()}
			}
			resp.Rows = append(resp.Rows, wr)
		}
		return resp
	case "tables":
		return wireResponse{Tables: s.conn().Tables()}
	case "shardmap":
		if s.ShardMapFunc == nil {
			return wireResponse{Err: "kdb: this node serves no shard map"}
		}
		epoch, data := s.ShardMapFunc()
		return wireResponse{Epoch: epoch, ShardMap: data}
	}
	return wireResponse{Err: fmt.Sprintf("kdb: unknown wire op %q", req.Op)}
}

// Listen serves the database on addr in a background goroutine. It returns
// the bound listener so callers can learn the ephemeral port; stop the
// server with Shutdown (or by closing the listener).
func (s *Server) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kdb: listen %s: %w", addr, err)
	}
	go s.Serve(l) //nolint:errcheck — Serve exits when l closes
	return l, nil
}

// Shutdown gracefully stops the server: it closes every listener, closes
// idle connections, and waits for in-flight requests to finish. If the
// context expires first, remaining connections are force-closed and the
// context's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.initLocked()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	for l := range s.listeners {
		l.Close()
	}
	for sc := range s.conns {
		sc.mu.Lock()
		if sc.inFlight {
			sc.closeAfter = true // handler closes after the response
		} else {
			sc.c.Close()
		}
		sc.mu.Unlock()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Remote is a client for a served database. It is safe for concurrent use;
// requests are serialized over one connection. If the connection breaks
// (server restart, network blip), the next idempotent request transparently
// redials and retries once; mutations are never retried — the client
// redials so subsequent requests work, but reports the original error,
// since the server may or may not have applied the lost mutation.
type Remote struct {
	mu     sync.Mutex
	addr   string // host:port retained for reconnects
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	closed bool
	// lsn is the highest server LSN observed on any response — a passive
	// high-water mark (no extra round trips) used for cache validity.
	lsn atomic.Int64
}

// LSN returns the highest log sequence number this client has observed
// from the server — a lower bound on the server's position, monotonic per
// client. It never issues a request; use Status for an active probe.
func (r *Remote) LSN() int64 { return r.lsn.Load() }

// noteLSN advances the observed high-water mark.
func (r *Remote) noteLSN(lsn int64) {
	for {
		cur := r.lsn.Load()
		if lsn <= cur || r.lsn.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// dialTimeout bounds connection establishment, including reconnects.
const dialTimeout = 10 * time.Second

// Dial connects to a kdb server. The address accepts an optional kdb://
// scheme prefix — the paper's "SQL connection URL".
func Dial(addr string) (*Remote, error) {
	hostport := strings.TrimPrefix(addr, "kdb://")
	conn, err := net.DialTimeout("tcp", hostport, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("kdb: dial %s: %w", addr, err)
	}
	r := &Remote{addr: hostport}
	r.reset(conn)
	return r, nil
}

// reset installs a fresh connection; callers hold r.mu (or own r solely).
func (r *Remote) reset(conn net.Conn) {
	r.conn = conn
	r.enc = json.NewEncoder(conn)
	r.dec = json.NewDecoder(bufio.NewReader(conn))
}

// reconnect redials the server after a broken pipe; callers hold r.mu.
func (r *Remote) reconnect() error {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	conn, err := net.DialTimeout("tcp", r.addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("kdb: reconnect %s: %w", r.addr, err)
	}
	r.reset(conn)
	return nil
}

// wireError is an application-level error reported by the server (SQL
// errors, limit refusals). The request/response exchange completed, so the
// connection itself is still healthy and must not be torn down or retried.
type wireError struct{ msg string }

func (e wireError) Error() string { return e.msg }

func (r *Remote) roundTrip(req wireRequest, idempotent bool) (wireResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return wireResponse{}, fmt.Errorf("kdb: remote connection closed")
	}
	if r.conn == nil {
		// A previous request broke the connection; restore it now.
		if err := r.reconnect(); err != nil {
			return wireResponse{}, err
		}
	}
	resp, err := r.try(req)
	if err == nil {
		r.noteLSN(resp.LSN)
		return resp, nil
	}
	var we wireError
	if errors.As(err, &we) {
		return wireResponse{}, err // the server answered; keep the connection
	}
	// Transport failure: drop the connection. Idempotent requests retry
	// once on a fresh dial; mutations surface the error (retrying could
	// double-apply) and leave reconnection to the next request.
	r.conn.Close()
	r.conn = nil
	if !idempotent {
		return wireResponse{}, err
	}
	if rerr := r.reconnect(); rerr != nil {
		return wireResponse{}, err
	}
	resp, err = r.try(req)
	if err == nil {
		r.noteLSN(resp.LSN)
	}
	return resp, err
}

// try sends one request and reads one response on the current connection;
// callers hold r.mu.
func (r *Remote) try(req wireRequest) (wireResponse, error) {
	if err := r.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("kdb: send: %w", err)
	}
	var resp wireResponse
	if err := r.dec.Decode(&resp); err != nil {
		return wireResponse{}, fmt.Errorf("kdb: receive: %w", err)
	}
	if resp.Err != "" {
		return wireResponse{}, wireError{resp.Err}
	}
	return resp, nil
}

// Exec implements Conn.
func (r *Remote) Exec(query string, args ...any) (Result, error) {
	return r.ExecTraced(telemetry.TraceContext{}, query, args...)
}

// ExecTraced implements TracedConn: the mutation is sent with the trace
// context on the wire, and the client-side round trip becomes an "rpc.exec"
// span.
func (r *Remote) ExecTraced(tc telemetry.TraceContext, query string, args ...any) (Result, error) {
	hop := telemetry.StartHop(tc, "rpc.exec")
	hop.SetSQL(query)
	hop.Attr("addr", r.addr)
	wa, err := encodeArgs(args)
	if err != nil {
		hop.Fail(err)
		return Result{}, err
	}
	wtc := hop.Context()
	resp, err := r.roundTrip(wireRequest{Op: "exec", SQL: query, Args: wa, TraceID: wtc.TraceID, SpanID: wtc.SpanID}, false)
	if err != nil {
		hop.Fail(err)
		return Result{}, err
	}
	hop.AttrInt("rows_affected", int64(resp.RowsAffected))
	hop.End()
	return Result{LastInsertID: resp.LastInsertID, RowsAffected: resp.RowsAffected, LSN: resp.LSN}, nil
}

// Query implements Conn.
func (r *Remote) Query(query string, args ...any) (*Rows, error) {
	return r.QueryTraced(telemetry.TraceContext{}, query, args...)
}

// QueryTraced implements TracedConn; see ExecTraced.
func (r *Remote) QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*Rows, error) {
	hop := telemetry.StartHop(tc, "rpc.query")
	hop.SetSQL(query)
	hop.Attr("addr", r.addr)
	wa, err := encodeArgs(args)
	if err != nil {
		hop.Fail(err)
		return nil, err
	}
	wtc := hop.Context()
	resp, err := r.roundTrip(wireRequest{Op: "query", SQL: query, Args: wa, TraceID: wtc.TraceID, SpanID: wtc.SpanID}, true)
	if err != nil {
		hop.Fail(err)
		return nil, err
	}
	rows := &Rows{Columns: resp.Columns}
	for _, wr := range resp.Rows {
		vals, err := decodeArgs(wr)
		if err != nil {
			hop.Fail(err)
			return nil, err
		}
		rows.rows = append(rows.rows, vals)
	}
	hop.AttrInt("rows", int64(rows.Len()))
	hop.End()
	return rows, nil
}

// QueryRow implements Conn; it returns ErrNoRows when the query matches
// nothing.
func (r *Remote) QueryRow(query string, args ...any) ([]any, error) {
	rows, err := r.Query(query, args...)
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, ErrNoRows
	}
	return rows.Row(), nil
}

// Tables implements Conn.
func (r *Remote) Tables() []string {
	resp, err := r.roundTrip(wireRequest{Op: "tables"}, true)
	if err != nil {
		return nil
	}
	return resp.Tables
}

// Close implements Conn.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}
