package kdb

// ColType is a column's declared type.
type ColType int

// Supported column types.
const (
	TInteger ColType = iota
	TReal
	TText
)

// String returns the SQL name of the type.
func (t ColType) String() string {
	switch t {
	case TInteger:
		return "INTEGER"
	case TReal:
		return "REAL"
	default:
		return "TEXT"
	}
}

// ColumnDef is one column in a CREATE TABLE statement.
type ColumnDef struct {
	Name       string
	Type       ColType
	PrimaryKey bool
}

// createStmt is CREATE TABLE.
type createStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

// insertStmt is INSERT INTO.
type insertStmt struct {
	Table   string
	Columns []string
	Rows    [][]expr
}

// selectItem is one projection: a column ref, *, or an aggregate.
type selectItem struct {
	Star  bool
	Agg   string // "", "COUNT", "MIN", "MAX", "AVG", "SUM"
	Col   colRef // for COUNT(*), Col.Name == "*"
	Alias string
}

// colRef is a possibly table-qualified column reference.
type colRef struct {
	Table string
	Name  string
}

func (c colRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// joinClause is INNER JOIN table ON a = b.
type joinClause struct {
	Table string
	Left  colRef
	Right colRef
}

// orderClause is ORDER BY col [DESC].
type orderClause struct {
	Col  colRef
	Desc bool
}

// selectStmt is SELECT.
type selectStmt struct {
	Items    []selectItem
	Distinct bool
	Table    string
	Joins    []joinClause
	Where    expr
	GroupBy  []colRef
	OrderBy  []orderClause
	Limit    int // -1 = none
	Offset   int // 0 = none
}

// updateStmt is UPDATE.
type updateStmt struct {
	Table string
	Sets  []struct {
		Col string
		Val expr
	}
	Where expr
}

// deleteStmt is DELETE FROM.
type deleteStmt struct {
	Table string
	Where expr
}

// dropStmt is DROP TABLE.
type dropStmt struct {
	Table    string
	IfExists bool
}

// createIndexStmt is CREATE INDEX name ON table (col).
type createIndexStmt struct {
	Name        string
	Table       string
	Col         string
	IfNotExists bool
}

// dropIndexStmt is DROP INDEX name.
type dropIndexStmt struct {
	Name     string
	IfExists bool
}

// expr is a WHERE/value expression node.
type expr interface{ isExpr() }

// litExpr is a literal value (int64, float64, string, or nil).
type litExpr struct{ Val any }

// phExpr is a ? placeholder, numbered left to right from 0.
type phExpr struct{ Index int }

// colExpr references a column.
type colExpr struct{ Ref colRef }

// binExpr is a binary operation: comparisons, AND, OR, LIKE.
type binExpr struct {
	Op   string // "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"
	L, R expr
}

// notExpr is NOT <expr>.
type notExpr struct{ E expr }

func (litExpr) isExpr() {}
func (phExpr) isExpr()  {}
func (colExpr) isExpr() {}
func (binExpr) isExpr() {}
func (notExpr) isExpr() {}
