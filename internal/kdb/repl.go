package kdb

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

// WAL-shipping replication. A primary's committed log records each carry a
// monotonically increasing LSN (engine.go assigns them at commit time); the
// most recent records are retained in an in-memory catch-up buffer. The
// "replicate" wire verb turns a server connection into a one-way stream of
// those records from a requested offset, interleaved with heartbeats; the
// "snapshot" verb ships the full deterministic dump (snapshotLocked) for
// followers too far behind the buffer. Followers apply records through
// ApplyRecord, which reuses the engine's normal apply path and appends the
// very same bytes to the follower's own log, so a replica's file replays —
// and dumps — byte-identically to the primary's.

// ErrLSNGap reports a replicated record that does not directly follow the
// local commit sequence; the follower must re-sync from a snapshot.
var ErrLSNGap = errors.New("kdb: replication LSN gap")

// replBufCap bounds the in-memory catch-up buffer (records kept after the
// amortized trim in commitLocked).
const replBufCap = 8192

// replRecord is one committed log record retained for catch-up.
type replRecord struct {
	lsn int64
	raw []byte // exact log line, no trailing newline
}

// replMsg is one server->follower stream message.
type replMsg struct {
	LSN              int64           `json:"lsn,omitempty"`
	Entry            json.RawMessage `json:"entry,omitempty"`
	PrimaryLSN       int64           `json:"primary_lsn,omitempty"`
	Heartbeat        bool            `json:"hb,omitempty"`
	SnapshotRequired bool            `json:"snap,omitempty"`
	Err              string          `json:"err,omitempty"`
}

// NodeStatus is a served database's replication identity, reported by the
// "status" wire verb.
type NodeStatus struct {
	Role string // "primary" or "replica"
	LSN  int64  // last committed (primary) or applied (replica) LSN
	Addr string // advertised address, if the server was given one
}

// LSN returns the last committed log sequence number.
func (db *DB) LSN() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lsn
}

// CommitNotify returns a channel that is closed at the next commit. Each
// commit closes the previously handed-out channel, so watchers re-arm by
// calling CommitNotify again after a wake-up — the same broadcast the
// replication feed rides, exposed for cache invalidation.
func (db *DB) CommitNotify() <-chan struct{} { return db.commitSignal() }

// commitSignal returns a channel that is closed at the next commit.
func (db *DB) commitSignal() <-chan struct{} {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.commitCh == nil {
		db.commitCh = make(chan struct{})
	}
	return db.commitCh
}

// entriesSince returns copies of the buffered records with LSN > after.
// ok is false when the buffer no longer reaches back to after (or the
// caller is ahead of this database), meaning a full snapshot is required.
func (db *DB) entriesSince(after int64) (recs []replRecord, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if after == db.lsn {
		return nil, true
	}
	if after > db.lsn {
		return nil, false
	}
	if len(db.replBuf) == 0 || db.replBuf[0].lsn > after+1 {
		return nil, false
	}
	start := int(after + 1 - db.replBuf[0].lsn)
	return append([]replRecord(nil), db.replBuf[start:]...), true
}

// ApplyRecord applies one replicated log record at the given LSN: the
// engine's normal apply path runs the mutation, the identical bytes are
// appended to the local log, and the local LSN advances to match. A record
// that does not directly follow the local sequence returns ErrLSNGap.
func (db *DB) ApplyRecord(lsn int64, entry []byte) error {
	var e walEntry
	if err := json.Unmarshal(entry, &e); err != nil {
		return fmt.Errorf("kdb: corrupt replicated record: %w", err)
	}
	if e.isMeta() {
		return fmt.Errorf("kdb: unexpected meta record in replication stream")
	}
	args, err := decodeArgs(e.Args)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if lsn != db.lsn+1 {
		return fmt.Errorf("%w: record %d onto local %d", ErrLSNGap, lsn, db.lsn)
	}
	if db.wal == nil && db.walErr != nil {
		return fmt.Errorf("kdb: log unavailable after failed compaction: %w", db.walErr)
	}
	_, undo, err := db.applyLocked(e.SQL, args)
	if err != nil {
		return err
	}
	if db.wal != nil {
		line := make([]byte, 0, len(entry)+1)
		line = append(append(line, entry...), '\n')
		if err := db.wal.AppendRaw(line); err != nil {
			if undo != nil {
				undo()
			}
			return fmt.Errorf("kdb: write log: %w", err)
		}
	}
	db.commitLocked(entry)
	return nil
}

// RestoreSnapshot replaces the database's entire contents with a snapshot
// previously produced by WriteSnapshot (or the "snapshot" wire verb). The
// new state is built off to the side first, so a malformed snapshot leaves
// the live database untouched; for file-backed databases the snapshot is
// written to a temp file and atomically renamed over the log, exactly like
// Compact.
func (db *DB) RestoreSnapshot(data []byte) error {
	entries, err := parseWALRecords("snapshot", data)
	if err != nil {
		return err
	}
	scratch := &DB{tables: map[string]*Table{}}
	var baseLSN int64
	for i, e := range entries {
		if e.Meta {
			for name, id := range e.AutoIDs {
				if t, ok := scratch.tables[strings.ToLower(name)]; ok && id > t.autoID {
					t.autoID = id
				}
			}
			if e.BaseLSN > baseLSN {
				baseLSN = e.BaseLSN
			}
			continue
		}
		if _, _, err := scratch.applyLocked(e.SQL, e.Args); err != nil {
			return fmt.Errorf("kdb: snapshot entry %d (%q): %w", i, e.SQL, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.path != "" {
		tmp := db.path + ".restore"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, db.path); err != nil {
			os.Remove(tmp)
			return err
		}
		if db.wal != nil {
			db.wal.Close() // old handle points at the unlinked file
		}
		nf, err := os.OpenFile(db.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			// The snapshot on disk is complete; adopt it in memory but
			// refuse further mutations until reopen, as Compact does.
			db.adoptLocked(scratch, baseLSN)
			db.wal = nil
			db.walErr = err
			return err
		}
		db.wal = &wal{f: nf, w: bufio.NewWriter(nf)}
		db.walErr = nil
	}
	db.adoptLocked(scratch, baseLSN)
	return nil
}

// adoptLocked swaps in a freshly restored state and wakes replication
// streams so chained followers notice the new world; db.mu must be held.
func (db *DB) adoptLocked(scratch *DB, lsn int64) {
	db.tables = scratch.tables
	db.lsn = lsn
	db.replBuf = nil
	if db.commitCh != nil {
		close(db.commitCh)
		db.commitCh = nil
	}
}

// serveReplicate turns one accepted server connection into a replication
// stream: every committed record after the requested LSN, in order, plus
// heartbeats carrying the primary's LSN while idle. The stream ends when
// the follower is too far behind the catch-up buffer (SnapshotRequired),
// when the connection breaks, or when the server shuts down.
func (s *Server) serveReplicate(sc *serverConn, req wireRequest) {
	metReplStreams.Add(1)
	defer metReplStreams.Add(-1)
	enc := json.NewEncoder(sc.c)
	send := func(m replMsg) bool {
		sc.c.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		return enc.Encode(m) == nil
	}
	cursor := req.AfterLSN
	for {
		// Fetch the signal before scanning so a commit between the scan
		// and the wait cannot be lost.
		ch := s.DB.commitSignal()
		recs, ok := s.DB.entriesSince(cursor)
		if !ok {
			send(replMsg{SnapshotRequired: true})
			return
		}
		if len(recs) == 0 {
			idle := time.NewTimer(s.heartbeatInterval())
			select {
			case <-ch:
				idle.Stop()
			case <-idle.C:
				if !send(replMsg{Heartbeat: true, PrimaryLSN: s.DB.LSN()}) {
					return
				}
			case <-s.done:
				idle.Stop()
				return
			}
			continue
		}
		primaryLSN := s.DB.LSN()
		for _, rec := range recs {
			if !send(replMsg{LSN: rec.lsn, Entry: rec.raw, PrimaryLSN: primaryLSN}) {
				return
			}
			metReplRecordsSent.Inc()
			cursor = rec.lsn
		}
	}
}

// ReplEvent is one decoded message from a replication stream.
type ReplEvent struct {
	LSN              int64
	Entry            []byte
	PrimaryLSN       int64
	Heartbeat        bool
	SnapshotRequired bool
}

// ReplStream is a follower's view of a primary's replication stream. It is
// used by a single goroutine (the follower apply loop).
type ReplStream struct {
	conn    net.Conn
	dec     *json.Decoder
	timeout time.Duration
}

// DialReplication opens a replication stream delivering every committed
// record after afterLSN. recvTimeout bounds each Recv; with heartbeats
// arriving every Server.HeartbeatInterval, a Recv timeout means the
// primary is unreachable and the follower should re-sync.
func DialReplication(addr string, afterLSN int64, recvTimeout time.Duration) (*ReplStream, error) {
	hostport := strings.TrimPrefix(addr, "kdb://")
	conn, err := net.DialTimeout("tcp", hostport, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("kdb: dial %s: %w", addr, err)
	}
	if err := json.NewEncoder(conn).Encode(wireRequest{Op: "replicate", AfterLSN: afterLSN}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("kdb: start replication: %w", err)
	}
	return &ReplStream{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), timeout: recvTimeout}, nil
}

// Recv blocks for the next stream message.
func (s *ReplStream) Recv() (ReplEvent, error) {
	if s.timeout > 0 {
		s.conn.SetReadDeadline(time.Now().Add(s.timeout))
	}
	var m replMsg
	if err := s.dec.Decode(&m); err != nil {
		return ReplEvent{}, fmt.Errorf("kdb: replication receive: %w", err)
	}
	if m.Err != "" {
		return ReplEvent{}, wireError{m.Err}
	}
	return ReplEvent{
		LSN:              m.LSN,
		Entry:            []byte(m.Entry),
		PrimaryLSN:       m.PrimaryLSN,
		Heartbeat:        m.Heartbeat,
		SnapshotRequired: m.SnapshotRequired,
	}, nil
}

// Close tears down the stream's connection.
func (s *ReplStream) Close() error { return s.conn.Close() }

// Status reports the served database's role and LSN — the read router's
// staleness probe.
func (r *Remote) Status() (NodeStatus, error) {
	resp, err := r.roundTrip(wireRequest{Op: "status"}, true)
	if err != nil {
		return NodeStatus{}, err
	}
	return NodeStatus{Role: resp.Role, LSN: resp.LSN, Addr: resp.Addr}, nil
}

// Snapshot fetches a full snapshot of the served database and the LSN it
// represents — the follower's bootstrap and re-sync transfer.
func (r *Remote) Snapshot() ([]byte, int64, error) {
	resp, err := r.roundTrip(wireRequest{Op: "snapshot"}, true)
	if err != nil {
		return nil, 0, err
	}
	return resp.Snapshot, resp.LSN, nil
}

// SnapshotDelta fetches an incremental snapshot: the ordered chunk
// manifest of the served database's current snapshot, data for exactly
// the chunks not named in have, and the LSN the snapshot represents.
// Reassembling the manifest (local chunks where possible, shipped bytes
// otherwise) reproduces the WriteSnapshot stream byte-for-byte; see
// ReassembleSnapshot.
func (r *Remote) SnapshotDelta(have []string) ([]ChunkRef, [][]byte, int64, error) {
	resp, err := r.roundTrip(wireRequest{Op: "delta", Have: have}, true)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Manifest, resp.Chunks, resp.LSN, nil
}

// ReassembleSnapshot rebuilds a full snapshot stream from a delta
// manifest: each chunk's bytes come from the local store (lookup, which
// may return nil to decline) or from shipped, consumed in manifest order.
// Every reassembled chunk is re-hashed against its reference, so a stale
// or corrupt local segment fails loudly instead of restoring a diverged
// state.
func ReassembleSnapshot(manifest []ChunkRef, shipped [][]byte, lookup func(hash string) []byte) ([]byte, error) {
	var out bytes.Buffer
	next := 0
	for i, ref := range manifest {
		var data []byte
		if lookup != nil {
			data = lookup(ref.Hash)
		}
		if data == nil {
			if next >= len(shipped) {
				return nil, fmt.Errorf("kdb: delta manifest entry %d (%s): chunk neither held locally nor shipped", i, ref.Hash)
			}
			data = shipped[next]
			next++
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != ref.Hash {
			return nil, fmt.Errorf("kdb: delta manifest entry %d: chunk hash mismatch", i)
		}
		out.Write(data)
	}
	if next != len(shipped) {
		return nil, fmt.Errorf("kdb: delta reassembly consumed %d of %d shipped chunks", next, len(shipped))
	}
	return out.Bytes(), nil
}

// ShardMap fetches the epoch-versioned partition map served by a
// coordinator node. The bytes are opaque to kdb; the shard package owns
// their JSON shape.
func (r *Remote) ShardMap() (epoch int64, data []byte, err error) {
	resp, err := r.roundTrip(wireRequest{Op: "shardmap"}, true)
	if err != nil {
		return 0, nil, err
	}
	return resp.Epoch, resp.ShardMap, nil
}
