package workloadgen

// Synthetic IO500 corpus generation — the Treasure-Trove scale scenario.
// The paper's knowledge cycle is meant to absorb community-scale result
// lists (thousands of submissions), and the analytics layer is sized
// against exactly that: ~35 knowledge-store rows per submission means a
// thirty-thousand-submission corpus crosses a million rows. The corpus is
// fully deterministic in (n, seed) — fixed epoch, per-submission derived
// seeds — so experiments and benchmarks regenerate identical data.

import (
	"fmt"
	"time"

	"repro/internal/io500"
	"repro/internal/knowledge"
	"repro/internal/rng"
)

// corpusEpoch anchors synthetic submission timestamps. A constant, not
// the wall clock: the corpus for a given (n, seed) never changes.
var corpusEpoch = time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC)

// corpusTier is a storage-system archetype the generator samples from:
// the spread of real submission lists comes far more from system scale
// than from run-to-run noise.
type corpusTier struct {
	name  string
	fs    string
	bw    float64 // ior-easy-write scale, GiB/s
	md    float64 // mdtest-easy-write scale, kIOPS
	nodes int
}

var corpusTiers = []corpusTier{
	{name: "campus", fs: "nfs", bw: 2.5, md: 18, nodes: 4},
	{name: "midrange", fs: "beegfs", bw: 28, md: 120, nodes: 16},
	{name: "capacity", fs: "lustre", bw: 110, md: 310, nodes: 64},
	{name: "flagship", fs: "lustre", bw: 620, md: 1400, nodes: 512},
	{name: "allflash", fs: "daos", bw: 980, md: 4200, nodes: 128},
}

// phaseScale relates each scored phase to its tier anchor: bandwidth
// phases to bw (easy write = 1), metadata phases to md (easy write = 1).
var phaseScale = map[string]float64{
	io500.IorEasyWrite:     1.0,
	io500.IorHardWrite:     0.11,
	io500.IorEasyRead:      1.2,
	io500.IorHardRead:      0.18,
	io500.MdtestEasyWrite:  1.0,
	io500.MdtestHardWrite:  0.35,
	io500.Find:             3.5,
	io500.MdtestEasyStat:   2.2,
	io500.MdtestHardStat:   1.6,
	io500.MdtestEasyDelete: 0.8,
	io500.MdtestHardRead:   1.1,
	io500.MdtestHardDelete: 0.5,
}

// SynthesizeIO500Corpus generates n synthetic IO500 submissions. Each
// submission gets its own rng.Derive stream, so the i-th submission is
// identical regardless of n or generation order.
func SynthesizeIO500Corpus(n int, seed uint64) ([]*knowledge.IO500Object, error) {
	out := make([]*knowledge.IO500Object, 0, n)
	for i := 0; i < n; i++ {
		o, err := synthesizeSubmission(i, rng.New(rng.Derive(seed, uint64(i))))
		if err != nil {
			return nil, fmt.Errorf("workloadgen: submission %d: %w", i, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func synthesizeSubmission(i int, r *rng.Source) (*knowledge.IO500Object, error) {
	tier := corpusTiers[r.Intn(len(corpusTiers))]
	// System-level luck: one multiplier for the whole submission (a slow
	// interconnect drags every phase), plus per-phase noise.
	sysFactor := r.LogNormal(0, 0.35)
	results := make([]io500.PhaseResult, 0, len(io500.ScheduleOrder))
	total := 0.0
	for _, phase := range io500.ScheduleOrder {
		anchor := tier.md
		if contains(io500.BandwidthPhases, phase) {
			anchor = tier.bw
		}
		v := anchor * phaseScale[phase] * sysFactor * r.LogNormal(0, 0.18)
		secs := r.Range(300, 420)
		total += secs
		results = append(results, io500.PhaseResult{Phase: phase, Value: v, Seconds: secs})
	}
	scores, err := io500.ComputeScores(results)
	if err != nil {
		return nil, err
	}
	began := corpusEpoch.Add(time.Duration(i) * 97 * time.Minute)
	o := &knowledge.IO500Object{
		Command:    fmt.Sprintf("./io500.sh config-%s.ini", tier.name),
		Began:      began,
		Finished:   began.Add(time.Duration(total * float64(time.Second))),
		ScoreBW:    scores.BandwidthGiBps,
		ScoreMD:    scores.IOPSk,
		ScoreTotal: scores.Total,
		Options: map[string]string{
			"version":       io500.Version,
			"filesystem":    tier.fs,
			"api":           []string{"POSIX", "MPIIO"}[r.Intn(2)],
			"nodes":         fmt.Sprintf("%d", tier.nodes),
			"ppn":           fmt.Sprintf("%d", 8*(1+r.Intn(4))),
			"transferSize":  fmt.Sprintf("%d", io500.HardTransfer),
			"blockSize":     fmt.Sprintf("%dm", 16*(1+r.Intn(8))),
			"stonewallTime": "300",
		},
		System: &knowledge.SystemInfo{
			Hostname:     fmt.Sprintf("%s-%04d", tier.name, i),
			Architecture: "x86_64",
			CPUModel:     "synthetic",
			Cores:        tier.nodes * 64,
			CPUMHz:       2400,
			MemTotalKB:   int64(tier.nodes) * 256 * 1024 * 1024,
		},
	}
	for _, pr := range results {
		unit := "kIOPS"
		if contains(io500.BandwidthPhases, pr.Phase) {
			unit = "GiB/s"
		}
		o.TestCases = append(o.TestCases, knowledge.TestCase{
			Name: pr.Phase, Value: pr.Value, Unit: unit, Seconds: pr.Seconds,
		})
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}
