// Package workloadgen implements the workload-generation and
// new-knowledge-generation use cases (paper §IV, §V-E1): from existing
// knowledge it regenerates the original benchmark command, derives
// modified configurations ("create configuration" in the explorer), emits
// JUBE configuration files for parameter sweeps, and synthesizes workload
// mixes for driving simulations.
package workloadgen

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ior"
	"repro/internal/jube"
	"repro/internal/knowledge"
	"repro/internal/units"
)

// CommandFromObject reconstructs the runnable benchmark command of a
// knowledge object (the explorer loads this into its configuration view).
func CommandFromObject(o *knowledge.Object) (string, error) {
	if o.Command == "" {
		return "", fmt.Errorf("workloadgen: knowledge object has no command")
	}
	return o.Command, nil
}

// Modify applies option overrides to an IOR command reconstructed from
// knowledge, returning the new command — the "create configuration" flow.
// Overrides use IOR option names: "-t": "4m", "-i": "10", "-F": "off".
func Modify(command string, overrides map[string]string) (string, error) {
	cfg, err := ior.ParseCommandLine(command)
	if err != nil {
		return "", fmt.Errorf("workloadgen: %w", err)
	}
	// Deterministic application order.
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := overrides[k]
		on := v != "off" && v != "false" && v != "0"
		switch k {
		case "-b":
			n, err := units.ParseSize(v)
			if err != nil {
				return "", fmt.Errorf("workloadgen: -b: %w", err)
			}
			cfg.BlockSize = n
		case "-t":
			n, err := units.ParseSize(v)
			if err != nil {
				return "", fmt.Errorf("workloadgen: -t: %w", err)
			}
			cfg.TransferSize = n
		case "-s":
			if _, err := fmt.Sscanf(v, "%d", &cfg.Segments); err != nil {
				return "", fmt.Errorf("workloadgen: -s: %v", err)
			}
		case "-i":
			if _, err := fmt.Sscanf(v, "%d", &cfg.Repetitions); err != nil {
				return "", fmt.Errorf("workloadgen: -i: %v", err)
			}
		case "-N":
			if _, err := fmt.Sscanf(v, "%d", &cfg.NumTasks); err != nil {
				return "", fmt.Errorf("workloadgen: -N: %v", err)
			}
		case "-o":
			cfg.TestFile = v
		case "-F":
			cfg.FilePerProc = on
		case "-C":
			cfg.ReorderTasks = on
		case "-e":
			cfg.Fsync = on
		case "-c":
			cfg.Collective = on
		case "-k":
			cfg.KeepFile = on
		default:
			return "", fmt.Errorf("workloadgen: unsupported override %q", k)
		}
	}
	if err := cfg.Validate(); err != nil {
		return "", fmt.Errorf("workloadgen: modified configuration invalid: %w", err)
	}
	return cfg.CommandLine(), nil
}

// Sweep describes a parameter sweep derived from a base command.
type Sweep struct {
	Name string
	// Base is the starting command (typically from a knowledge object).
	Base string
	// Parameters maps IOR option names to candidate values, e.g.
	// "-t": ["1m","2m","4m"].
	Parameters map[string][]string
	// OutPath is the JUBE workspace directory name.
	OutPath string
}

// optionToParam maps IOR options to JUBE parameter names.
var optionToParam = map[string]string{
	"-b": "blocksize", "-t": "transfersize", "-s": "segments",
	"-i": "repetitions", "-N": "tasks", "-o": "testfile",
}

// JUBEConfig renders the sweep as a JUBE XML document whose single step
// runs the base command with each parameter combination substituted —
// closing the cycle from knowledge back to generation.
func (s Sweep) JUBEConfig() (string, error) {
	if s.Base == "" {
		return "", fmt.Errorf("workloadgen: sweep has no base command")
	}
	if len(s.Parameters) == 0 {
		return "", fmt.Errorf("workloadgen: sweep has no parameters")
	}
	base, err := ior.ParseCommandLine(s.Base)
	if err != nil {
		return "", fmt.Errorf("workloadgen: %w", err)
	}
	name := s.Name
	if name == "" {
		name = "generated-sweep"
	}
	outpath := s.OutPath
	if outpath == "" {
		outpath = "bench_runs"
	}
	var opts []string
	for k := range s.Parameters {
		if _, ok := optionToParam[k]; !ok {
			return "", fmt.Errorf("workloadgen: cannot sweep option %q", k)
		}
		opts = append(opts, k)
	}
	sort.Strings(opts)

	b := &jube.Benchmark{
		Name:    name,
		OutPath: outpath,
		Comment: "generated from existing knowledge by the I/O knowledge cycle",
	}
	ps := jube.ParameterSet{Name: "sweepParams"}
	cmd := rebuildCommand(base, func(opt string) (string, bool) {
		if contains(opts, opt) {
			return "$" + optionToParam[opt], true
		}
		return "", false
	})
	for _, opt := range opts {
		ps.Parameters = append(ps.Parameters, jube.Parameter{
			Name:  optionToParam[opt],
			Value: strings.Join(s.Parameters[opt], ","),
		})
	}
	b.ParameterSets = []jube.ParameterSet{ps}
	b.Steps = []jube.Step{{Name: "run", Use: []string{"sweepParams"}, Do: []string{cmd}}}
	b.Analysers = []jube.Analyser{{
		Name: "extract",
		Analyse: []jube.Analyse{{
			Step: "run",
			Patterns: []jube.Pattern{
				{Name: "max_write", Type: "float", Regex: `Max Write: $jube_pat_fp MiB/sec`},
				{Name: "max_read", Type: "float", Regex: `Max Read:  $jube_pat_fp MiB/sec`},
			},
		}},
	}}
	var cols []jube.Column
	for _, opt := range opts {
		cols = append(cols, jube.Column{Name: optionToParam[opt]})
	}
	cols = append(cols, jube.Column{Name: "max_write"}, jube.Column{Name: "max_read"})
	b.Result = jube.Result{Tables: []jube.Table{{Name: "results", Columns: cols}}}

	doc := jube.Config{Benchmarks: []jube.Benchmark{*b}}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return xml.Header + string(out) + "\n", nil
}

// rebuildCommand renders an ior command, substituting selected options via
// sub; options not substituted render their configured values.
func rebuildCommand(cfg ior.Config, sub func(opt string) (string, bool)) string {
	get := func(opt, val string) string {
		if s, ok := sub(opt); ok {
			return s
		}
		return val
	}
	var b strings.Builder
	b.WriteString("ior")
	fmt.Fprintf(&b, " -a %s", strings.ToLower(string(cfg.API)))
	fmt.Fprintf(&b, " -b %s", get("-b", units.FormatSize(cfg.BlockSize)))
	fmt.Fprintf(&b, " -t %s", get("-t", units.FormatSize(cfg.TransferSize)))
	fmt.Fprintf(&b, " -s %s", get("-s", fmt.Sprint(cfg.Segments)))
	if v, ok := sub("-N"); ok {
		fmt.Fprintf(&b, " -N %s", v)
	} else if cfg.NumTasks > 0 {
		fmt.Fprintf(&b, " -N %d", cfg.NumTasks)
	}
	if cfg.FilePerProc {
		b.WriteString(" -F")
	}
	if cfg.ReorderTasks {
		b.WriteString(" -C")
	}
	if cfg.Fsync {
		b.WriteString(" -e")
	}
	if cfg.Collective {
		b.WriteString(" -c")
	}
	fmt.Fprintf(&b, " -i %s", get("-i", fmt.Sprint(cfg.Repetitions)))
	fmt.Fprintf(&b, " -o %s", get("-o", cfg.TestFile))
	if cfg.KeepFile {
		b.WriteString(" -k")
	}
	return b.String()
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Mix is a synthetic workload mix derived from a knowledge population,
// usable to drive simulations or initialize new evaluation processes.
type Mix struct {
	// WriteFraction is the share of write bandwidth demand in [0,1].
	WriteFraction float64
	// MeanTransfer is the demand-weighted mean transfer size in bytes.
	MeanTransfer int64
	// Commands are representative generator commands, most common first.
	Commands []string
}

// DeriveMix summarizes a knowledge population into a workload mix.
func DeriveMix(objs []*knowledge.Object) (Mix, error) {
	if len(objs) == 0 {
		return Mix{}, fmt.Errorf("workloadgen: no knowledge to derive a mix from")
	}
	var wr, rd float64
	var xferSum float64
	var xferN int
	counts := map[string]int{}
	for _, o := range objs {
		if s, ok := o.SummaryFor("write"); ok {
			wr += s.MeanMiBps * s.MeanSec
		}
		if s, ok := o.SummaryFor("read"); ok {
			rd += s.MeanMiBps * s.MeanSec
		}
		if v, ok := parseAnySize(o.Pattern["transfersize"]); ok {
			xferSum += float64(v)
			xferN++
		}
		counts[o.Command]++
	}
	m := Mix{}
	if wr+rd > 0 {
		m.WriteFraction = wr / (wr + rd)
	}
	if xferN > 0 {
		m.MeanTransfer = int64(xferSum / float64(xferN))
	}
	type cc struct {
		cmd string
		n   int
	}
	var cs []cc
	for c, n := range counts {
		cs = append(cs, cc{c, n})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].n != cs[j].n {
			return cs[i].n > cs[j].n
		}
		return cs[i].cmd < cs[j].cmd
	})
	for _, c := range cs {
		m.Commands = append(m.Commands, c.cmd)
	}
	return m, nil
}

func parseAnySize(v string) (int64, bool) {
	if v == "" {
		return 0, false
	}
	if n, err := units.ParseSize(v); err == nil {
		return n, true
	}
	var f float64
	var unit string
	if _, err := fmt.Sscanf(v, "%f %s", &f, &unit); err == nil {
		mult := int64(1)
		switch strings.ToLower(unit) {
		case "kib":
			mult = units.KiB
		case "mib":
			mult = units.MiB
		case "gib":
			mult = units.GiB
		}
		return int64(f * float64(mult)), true
	}
	return 0, false
}
