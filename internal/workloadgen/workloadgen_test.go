package workloadgen

import (
	"strings"
	"testing"

	"repro/internal/jube"
	"repro/internal/knowledge"
	"repro/internal/units"
)

const baseCmd = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"

func TestCommandFromObject(t *testing.T) {
	o := &knowledge.Object{Command: baseCmd}
	got, err := CommandFromObject(o)
	if err != nil || got != baseCmd {
		t.Errorf("got %q, %v", got, err)
	}
	if _, err := CommandFromObject(&knowledge.Object{}); err == nil {
		t.Error("empty command should error")
	}
}

func TestModify(t *testing.T) {
	got, err := Modify(baseCmd, map[string]string{"-t": "4m", "-i": "10"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "-t 4m") || !strings.Contains(got, "-i 10") {
		t.Errorf("modified = %q", got)
	}
	// Untouched options survive.
	for _, keep := range []string{"-a mpiio", "-b 4m", "-s 40", "-F", "-C", "-e", "-o /scratch/fuchs/zhuz/test80", "-k"} {
		if !strings.Contains(got, keep) {
			t.Errorf("lost %q in %q", keep, got)
		}
	}
	// Flags can be turned off.
	got, err = Modify(baseCmd, map[string]string{"-F": "off", "-e": "off"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "-F") || strings.Contains(got, "-e") {
		t.Errorf("flags not removed: %q", got)
	}
	// And on.
	got, err = Modify("ior -b 4m -t 2m -o f", map[string]string{"-c": "on"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "-c") {
		t.Errorf("collective not enabled: %q", got)
	}
}

func TestModifyErrors(t *testing.T) {
	if _, err := Modify("not an ior command -q", nil); err == nil {
		t.Error("bad base should error")
	}
	if _, err := Modify(baseCmd, map[string]string{"-t": "bogus"}); err == nil {
		t.Error("bad size should error")
	}
	if _, err := Modify(baseCmd, map[string]string{"-x": "1"}); err == nil {
		t.Error("unknown override should error")
	}
	if _, err := Modify(baseCmd, map[string]string{"-s": "x"}); err == nil {
		t.Error("bad int should error")
	}
	// Modification that breaks validation (block not multiple of transfer).
	if _, err := Modify(baseCmd, map[string]string{"-t": "3m"}); err == nil {
		t.Error("invalid result should error")
	}
}

func TestSweepJUBEConfig(t *testing.T) {
	s := Sweep{
		Name: "transfer-sweep",
		Base: baseCmd,
		Parameters: map[string][]string{
			"-t": {"1m", "2m", "4m"},
			"-N": {"40", "80"},
		},
	}
	xmlText, err := s.JUBEConfig()
	if err != nil {
		t.Fatal(err)
	}
	// The generated config must parse back with jube and expand to the
	// full cartesian product.
	cfg, err := jube.ParseConfig(strings.NewReader(xmlText))
	if err != nil {
		t.Fatalf("generated config does not parse: %v\n%s", err, xmlText)
	}
	b := &cfg.Benchmarks[0]
	if b.Name != "transfer-sweep" {
		t.Errorf("name = %q", b.Name)
	}
	combos, err := b.ExpandStep(&b.Steps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 6 {
		t.Errorf("combos = %d, want 6", len(combos))
	}
	// The substituted command must reference the parameters.
	do := b.Steps[0].Do[0]
	if !strings.Contains(do, "$transfersize") || !strings.Contains(do, "$tasks") {
		t.Errorf("step command = %q", do)
	}
	// Fixed options remain literal.
	if !strings.Contains(do, "-b 4m") || !strings.Contains(do, "-s 40") {
		t.Errorf("fixed options lost: %q", do)
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := (Sweep{}).JUBEConfig(); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := (Sweep{Base: baseCmd}).JUBEConfig(); err == nil {
		t.Error("no parameters should error")
	}
	if _, err := (Sweep{Base: baseCmd, Parameters: map[string][]string{"-z": {"1"}}}).JUBEConfig(); err == nil {
		t.Error("unsweepable option should error")
	}
	if _, err := (Sweep{Base: "garbage -q", Parameters: map[string][]string{"-t": {"1m"}}}).JUBEConfig(); err == nil {
		t.Error("bad base should error")
	}
}

func TestDeriveMix(t *testing.T) {
	objs := []*knowledge.Object{
		{
			Command: "ior A",
			Pattern: map[string]string{"transfersize": "2m"},
			Summaries: []knowledge.Summary{
				{Operation: "write", MeanMiBps: 1000, MeanSec: 10}, // 10000 MiB written
				{Operation: "read", MeanMiBps: 1000, MeanSec: 5},   // 5000 MiB read
			},
		},
		{
			Command: "ior A",
			Pattern: map[string]string{"transfersize": "4m"},
			Summaries: []knowledge.Summary{
				{Operation: "write", MeanMiBps: 500, MeanSec: 10}, // 5000 MiB
			},
		},
		{
			Command:   "hacc B",
			Pattern:   map[string]string{},
			Summaries: []knowledge.Summary{{Operation: "read", MeanMiBps: 100, MeanSec: 50}}, // 5000 MiB
		},
	}
	m, err := DeriveMix(objs)
	if err != nil {
		t.Fatal(err)
	}
	// writes 15000 vs reads 10000 -> 0.6.
	if m.WriteFraction < 0.59 || m.WriteFraction > 0.61 {
		t.Errorf("write fraction = %v", m.WriteFraction)
	}
	if m.MeanTransfer != 3*units.MiB {
		t.Errorf("mean transfer = %d", m.MeanTransfer)
	}
	if len(m.Commands) != 2 || m.Commands[0] != "ior A" {
		t.Errorf("commands = %v", m.Commands)
	}
	if _, err := DeriveMix(nil); err == nil {
		t.Error("empty population should error")
	}
}
