package workloadgen

import (
	"reflect"
	"testing"

	"repro/internal/io500"
)

func TestSynthesizeIO500CorpusDeterministic(t *testing.T) {
	a, err := SynthesizeIO500Corpus(50, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeIO500Corpus(50, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n, seed) must synthesize an identical corpus")
	}
	// Prefix stability: submission i does not depend on n.
	c, err := SynthesizeIO500Corpus(10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a[:10], c) {
		t.Fatal("corpus prefix must not depend on corpus size")
	}
	d, err := SynthesizeIO500Corpus(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c, d) {
		t.Fatal("different seeds must differ")
	}
}

func TestSynthesizeIO500CorpusShape(t *testing.T) {
	objs, err := SynthesizeIO500Corpus(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[string]bool{}
	for i, o := range objs {
		if err := o.Validate(); err != nil {
			t.Fatalf("submission %d invalid: %v", i, err)
		}
		if len(o.TestCases) != len(io500.ScheduleOrder) {
			t.Fatalf("submission %d has %d testcases, want %d", i, len(o.TestCases), len(io500.ScheduleOrder))
		}
		for j, tc := range o.TestCases {
			if tc.Name != io500.ScheduleOrder[j] {
				t.Fatalf("submission %d testcase %d = %q, want schedule order %q", i, j, tc.Name, io500.ScheduleOrder[j])
			}
			if tc.Value <= 0 || tc.Seconds <= 0 {
				t.Fatalf("submission %d %s: non-positive value/seconds", i, tc.Name)
			}
		}
		if o.ScoreBW <= 0 || o.ScoreMD <= 0 || o.ScoreTotal <= 0 {
			t.Fatalf("submission %d has non-positive scores: %+v", i, o)
		}
		if !o.Finished.After(o.Began) {
			t.Fatalf("submission %d: finished before began", i)
		}
		tiers[o.Options["filesystem"]] = true
	}
	if len(tiers) < 3 {
		t.Fatalf("corpus drew only %d system tiers; want variety", len(tiers))
	}
}
