package loadgen

import (
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

func TestSelfTargetRun(t *testing.T) {
	target, err := StartSelfTarget(20, 20, 7, api.Config{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	reg := telemetry.NewRegistry()
	res, err := Run(Options{URL: target.URL, Conns: 8, Duration: 500 * time.Millisecond, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against a healthy self-target: %+v", res.Errors, res.Status)
	}
	if res.Conns != 8 {
		t.Fatalf("connected %d clients, want 8", res.Conns)
	}
	if res.P99 < res.P50 || res.P999 < res.P99 || res.Max < res.P999 {
		t.Fatalf("percentiles not monotone: p50=%v p99=%v p999=%v max=%v", res.P50, res.P99, res.P999, res.Max)
	}
	if res.Status[200] == 0 {
		t.Fatalf("no 200s recorded: %+v", res.Status)
	}
	// Warm clients revalidate with If-None-Match; a half-second run is
	// long enough that some hot URL repeats.
	if res.NotModified == 0 {
		t.Log("warning: no 304s observed in short run (timing-dependent)")
	}
	if res.HistP99 <= 0 {
		t.Fatal("telemetry-histogram p99 not derived")
	}
	if hv, ok := reg.Snapshot().Histograms["loadgen_request_seconds"]; !ok || hv.Count != res.Requests {
		t.Fatalf("histogram count %v, want %d", hv.Count, res.Requests)
	}
}

func TestRunIsSeedDeterministicInShape(t *testing.T) {
	// Two clients with the same index+seed must issue the same request
	// stream; different indices must diverge (statistically).
	a := newClient(1, "http://x", []int64{1, 2, 3}, []int64{4, 5}, 42)
	b := newClient(1, "http://x", []int64{1, 2, 3}, []int64{4, 5}, 42)
	c := newClient(2, "http://x", []int64{1, 2, 3}, []int64{4, 5}, 42)
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		av, bv, cv := a.next(), b.next(), c.next()
		if av == bv {
			same++
		}
		if av != cv {
			diff++
		}
	}
	if same != 64 {
		t.Fatalf("same-seed clients diverged: %d/64 equal", same)
	}
	if diff < 60 {
		t.Fatalf("different-index clients too correlated: %d/64 differ", diff)
	}
}

func TestSynthesizeObjectsValidate(t *testing.T) {
	objs := SynthesizeObjects(25, 9)
	if len(objs) != 25 {
		t.Fatalf("got %d objects", len(objs))
	}
	for i, o := range objs {
		if err := o.Validate(); err != nil {
			t.Fatalf("object %d invalid: %v", i, err)
		}
	}
	again := SynthesizeObjects(25, 9)
	for i := range objs {
		if objs[i].Command != again[i].Command || objs[i].Summaries[0].MeanMiBps != again[i].Summaries[0].MeanMiBps {
			t.Fatalf("object %d not deterministic across runs", i)
		}
	}
}
