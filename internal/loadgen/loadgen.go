// Package loadgen is the self-generated client-model harness behind
// `iokc loadgen`: it models a fleet of API consumers — each holding one
// persistent HTTP connection and issuing a mix of point reads, ad-hoc
// analytics, and paginated scans — and reports the latency distribution
// (p50/p99/p999), cache behavior (hits, 304 revalidations), and error
// counts the EXPERIMENTS entries record. Clients remember ETags per URL
// and revalidate with If-None-Match, so a warmed run exercises the API's
// 304 path exactly like a production dashboard would.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/rng"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workloadgen"
)

// Options configures one load run.
type Options struct {
	// URL is the API base, e.g. http://127.0.0.1:8080.
	URL string
	// Conns is the number of concurrent clients; each holds exactly one
	// TCP connection for the whole run.
	Conns int
	// Duration is how long clients issue requests after ramp-up.
	Duration time.Duration
	// Seed derives every client's private request stream (rng.Derive), so
	// a run is reproducible connection-for-connection.
	Seed uint64
	// Metrics receives the loadgen_request_seconds histogram whose
	// Quantile(0.99) backs the CI regression gate; nil uses the default
	// registry.
	Metrics *telemetry.Registry
}

// Result is the harness's report.
type Result struct {
	Conns       int           `json:"conns"`
	Requests    int64         `json:"requests"`
	Errors      int64         `json:"errors"`
	Status      map[int]int64 `json:"status"`
	CacheHits   int64         `json:"cache_hits"`
	CacheMisses int64         `json:"cache_misses"`
	NotModified int64         `json:"not_modified"`
	P50         float64       `json:"p50_seconds"`
	P99         float64       `json:"p99_seconds"`
	P999        float64       `json:"p999_seconds"`
	Max         float64       `json:"max_seconds"`
	RPS         float64       `json:"rps"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	// HistP99 is the p99 estimated from the telemetry histogram's buckets
	// — coarser than P99 (computed from exact samples) but comparable
	// across runs, which is what a regression threshold needs.
	HistP99 float64 `json:"hist_p99_seconds"`
}

// CacheHitRate is hits/(hits+misses) over responses that carried X-Cache.
func (r *Result) CacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns=%d requests=%d errors=%d rps=%.0f elapsed=%s\n",
		r.Conns, r.Requests, r.Errors, r.RPS, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "latency p50=%.1fms p99=%.1fms p999=%.1fms max=%.1fms (hist p99=%.1fms)\n",
		r.P50*1e3, r.P99*1e3, r.P999*1e3, r.Max*1e3, r.HistP99*1e3)
	fmt.Fprintf(&b, "cache hit=%d miss=%d not_modified=%d hit_rate=%.1f%%\n",
		r.CacheHits, r.CacheMisses, r.NotModified, 100*r.CacheHitRate())
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "status %d: %d\n", c, r.Status[c])
	}
	return b.String()
}

// clientStats is one client's private tallies, merged after the run so the
// hot path never contends on shared state.
type clientStats struct {
	latencies   []float64
	requests    int64
	errors      int64
	status      map[int]int64
	cacheHits   int64
	cacheMisses int64
	notModified int64
}

// Run drives Options.Conns clients against the API for Options.Duration.
// Clients ramp up first (all connections established before the clock
// starts), so "sustains N concurrent connections" means N, not a moving
// average.
func Run(opts Options) (*Result, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	hist := reg.Histogram("loadgen_request_seconds")
	base := strings.TrimRight(opts.URL, "/")

	// Discover warm target ids once; every client shares the id pool but
	// draws from it with its own stream.
	ids, io500IDs, err := discoverIDs(base)
	if err != nil {
		return nil, fmt.Errorf("loadgen: discovery against %s failed: %w", base, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ready, done sync.WaitGroup
	var connected atomic.Int64
	start := make(chan struct{})
	statsCh := make([]*clientStats, opts.Conns)

	for i := 0; i < opts.Conns; i++ {
		ready.Add(1)
		done.Add(1)
		cs := &clientStats{status: map[int]int64{}}
		statsCh[i] = cs
		go func(idx int, cs *clientStats) {
			defer done.Done()
			c := newClient(idx, base, ids, io500IDs, opts.Seed)
			// Establish the connection before the measured window: one
			// health probe forces the dial and leaves keep-alive warm.
			if err := c.probe(); err == nil {
				connected.Add(1)
			}
			ready.Done()
			<-start
			for ctx.Err() == nil {
				c.step(ctx, cs, hist)
			}
			c.close()
		}(i, cs)
	}
	ready.Wait()
	t0 := time.Now()
	close(start)
	timer := time.AfterFunc(opts.Duration, cancel)
	done.Wait()
	timer.Stop()
	elapsed := time.Since(t0)

	res := &Result{Conns: int(connected.Load()), Status: map[int]int64{}, Elapsed: elapsed}
	var all []float64
	for _, cs := range statsCh {
		res.Requests += cs.requests
		res.Errors += cs.errors
		res.CacheHits += cs.cacheHits
		res.CacheMisses += cs.cacheMisses
		res.NotModified += cs.notModified
		for code, n := range cs.status {
			res.Status[code] += n
		}
		all = append(all, cs.latencies...)
	}
	if len(all) > 0 {
		sort.Float64s(all)
		res.P50, _ = stats.Percentile(all, 50)
		res.P99, _ = stats.Percentile(all, 99)
		res.P999, _ = stats.Percentile(all, 99.9)
		res.Max = all[len(all)-1]
	}
	if elapsed > 0 {
		res.RPS = float64(res.Requests) / elapsed.Seconds()
	}
	if snap := reg.Snapshot(); len(snap.Histograms) > 0 {
		if hv, ok := snap.Histograms["loadgen_request_seconds"]; ok {
			res.HistP99 = hv.Quantile(0.99)
		}
	}
	return res, nil
}

// discoverIDs fetches the first pages of objects and io500 runs so point
// reads target rows that exist.
func discoverIDs(base string) (objs, io500 []int64, err error) {
	c := &http.Client{Timeout: 30 * time.Second}
	fetch := func(path string) ([]int64, error) {
		resp, err := c.Get(base + path + "?limit=200")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		var env struct {
			Data []struct {
				ID int64 `json:"id"`
			} `json:"data"`
		}
		if err := decodeJSON(resp.Body, &env); err != nil {
			return nil, err
		}
		ids := make([]int64, len(env.Data))
		for i, d := range env.Data {
			ids[i] = d.ID
		}
		return ids, nil
	}
	if objs, err = fetch("/v1/objects"); err != nil {
		return nil, nil, err
	}
	if io500, err = fetch("/v1/io500"); err != nil {
		return nil, nil, err
	}
	return objs, io500, nil
}

// analyticsQueries are the canned ad-hoc SELECTs the analytics traffic
// class cycles through — aggregate shapes a dashboard would poll.
var analyticsQueries = []string{
	"SELECT operation, COUNT(*), AVG(mean_mib) FROM summaries GROUP BY operation",
	"SELECT COUNT(*) FROM performances",
	"SELECT operation, MAX(max_mib) FROM summaries GROUP BY operation",
}

// client is one modeled consumer: a single-connection HTTP client plus its
// private request stream and ETag memory.
type client struct {
	http   *http.Client
	base   string
	ids    []int64
	io500  []int64
	state  uint64 // splitmix-style stream state, derived from the run seed
	etags  map[string]string
	bodies []byte // scratch for draining
}

func newClient(idx int, base string, ids, io500 []int64, seed uint64) *client {
	tr := &http.Transport{
		// One live connection per client: this is the "concurrent
		// connections" the harness claims to sustain.
		MaxIdleConns:        1,
		MaxIdleConnsPerHost: 1,
		MaxConnsPerHost:     1,
		IdleConnTimeout:     90 * time.Second,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
	}
	return &client{
		http:   &http.Client{Transport: tr, Timeout: 60 * time.Second},
		base:   base,
		ids:    ids,
		io500:  io500,
		state:  rng.Derive(seed, uint64(idx)+1),
		etags:  map[string]string{},
		bodies: make([]byte, 4096),
	}
}

// next is a splitmix64 step over the client's private stream — cheap,
// deterministic, and independent across clients by construction of Derive.
func (c *client) next() uint64 {
	c.state += 0x9e3779b97f4a7c15
	z := c.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *client) probe() error {
	resp, err := c.http.Get(c.base + "/v1/healthz")
	if err != nil {
		return err
	}
	c.drain(resp)
	return nil
}

func (c *client) close() { c.http.CloseIdleConnections() }

// step issues one request according to the traffic mix: 60% point reads,
// 20% analytics, 20% paginated scan (a scan counts each page as one
// request).
func (c *client) step(ctx context.Context, cs *clientStats, hist *telemetry.Histogram) {
	switch r := c.next() % 10; {
	case r < 6:
		c.pointRead(ctx, cs, hist)
	case r < 8:
		c.analytics(ctx, cs, hist)
	default:
		c.scan(ctx, cs, hist)
	}
}

func (c *client) pointRead(ctx context.Context, cs *clientStats, hist *telemetry.Histogram) {
	var path string
	if len(c.io500) > 0 && (len(c.ids) == 0 || c.next()%2 == 0) {
		path = fmt.Sprintf("/v1/io500/%d", c.io500[c.next()%uint64(len(c.io500))])
	} else if len(c.ids) > 0 {
		path = fmt.Sprintf("/v1/objects/%d", c.ids[c.next()%uint64(len(c.ids))])
	} else {
		path = "/v1/objects"
	}
	c.get(ctx, path, cs, hist)
}

func (c *client) analytics(ctx context.Context, cs *clientStats, hist *telemetry.Histogram) {
	q := analyticsQueries[c.next()%uint64(len(analyticsQueries))]
	c.get(ctx, "/v1/query?q="+url.QueryEscape(q), cs, hist)
}

func (c *client) scan(ctx context.Context, cs *clientStats, hist *telemetry.Histogram) {
	cursor := ""
	for page := 0; page < 5 && ctx.Err() == nil; page++ {
		path := "/v1/objects?limit=20"
		if cursor != "" {
			path += "&cursor=" + url.QueryEscape(cursor)
		}
		next, ok := c.get(ctx, path, cs, hist)
		if !ok || next == "" {
			return
		}
		cursor = next
	}
}

// get issues one GET, records latency and cache signals, and returns the
// page's next_cursor (list endpoints) for scan traffic.
func (c *client) get(ctx context.Context, path string, cs *clientStats, hist *telemetry.Histogram) (nextCursor string, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		cs.errors++
		return "", false
	}
	if etag := c.etags[path]; etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	start := time.Now()
	resp, err := c.http.Do(req)
	lat := time.Since(start).Seconds()
	if err != nil {
		if ctx.Err() != nil {
			return "", false // shutdown, not a server error
		}
		cs.errors++
		return "", false
	}
	cs.requests++
	cs.latencies = append(cs.latencies, lat)
	hist.Observe(lat)
	cs.status[resp.StatusCode]++
	switch resp.Header.Get("X-Cache") {
	case "hit":
		cs.cacheHits++
	case "miss":
		cs.cacheMisses++
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.etags[path] = etag
	}
	if resp.StatusCode == http.StatusNotModified {
		cs.notModified++
		c.drain(resp)
		return "", true
	}
	if resp.StatusCode != http.StatusOK {
		cs.errors++
		c.drain(resp)
		return "", false
	}
	var env struct {
		NextCursor string `json:"next_cursor"`
	}
	if err := decodeJSON(resp.Body, &env); err != nil {
		resp.Body.Close()
		return "", true // non-envelope bodies (healthz) are fine
	}
	resp.Body.Close()
	return env.NextCursor, true
}

func (c *client) drain(resp *http.Response) {
	io.CopyBuffer(io.Discard, resp.Body, c.bodies)
	resp.Body.Close()
}

// SelfTarget is an in-process API instance seeded with synthetic
// knowledge, for smoke tests and `iokc loadgen --selftest`: the CI gate
// must not depend on an external server being up.
type SelfTarget struct {
	URL    string
	server *http.Server
	api    *api.Server
	store  *schema.Store
	lis    net.Listener
}

// StartSelfTarget seeds an in-memory store with objects+io500 corpora and
// serves the API on a loopback port.
func StartSelfTarget(objects, io500 int, seed uint64, cfg api.Config) (*SelfTarget, error) {
	store, err := schema.Open("")
	if err != nil {
		return nil, err
	}
	if err := seedStore(store, objects, io500, seed); err != nil {
		return nil, err
	}
	cfg.Store = store
	apiSrv := api.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		apiSrv.Close()
		return nil, err
	}
	srv := &http.Server{Handler: apiSrv}
	go srv.Serve(lis)
	return &SelfTarget{
		URL:    "http://" + lis.Addr().String(),
		server: srv,
		api:    apiSrv,
		store:  store,
		lis:    lis,
	}, nil
}

// Store exposes the seeded store so tests can interleave writes.
func (t *SelfTarget) Store() *schema.Store { return t.store }

// Close shuts the listener and API down.
func (t *SelfTarget) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	t.server.Shutdown(ctx)
	t.api.Close()
}

// seedStore writes a synthetic corpus: io500 runs from workloadgen plus
// hand-built IOR-shaped knowledge objects (enough summaries to make the
// analytics queries non-trivial).
func seedStore(store *schema.Store, objects, io500 int, seed uint64) error {
	if io500 > 0 {
		corpus, err := workloadgen.SynthesizeIO500Corpus(io500, seed)
		if err != nil {
			return err
		}
		if _, err := store.SaveIO500s(corpus); err != nil {
			return err
		}
	}
	objs := SynthesizeObjects(objects, seed)
	if len(objs) > 0 {
		if _, err := store.SaveObjects(objs); err != nil {
			return err
		}
	}
	return nil
}
