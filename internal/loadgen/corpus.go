package loadgen

// Synthetic IOR-shaped knowledge objects for the self-target: enough
// structure (two summaries per run, a few results) that point reads return
// real payloads and the analytics queries aggregate over real rows.

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/knowledge"
	"repro/internal/rng"
)

// SynthesizeObjects builds n valid IOR knowledge objects deterministically
// from seed (each passes knowledge.Object.Validate: source, command, and
// at least one summary).
func SynthesizeObjects(n int, seed uint64) []*knowledge.Object {
	began := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	objs := make([]*knowledge.Object, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Derive(seed, uint64(i)+0x10F)
		// Spread bandwidths over a plausible range; keep them derived so
		// repeated seeds produce byte-identical corpora.
		writeMiB := 800 + float64(r%4200)
		readMiB := writeMiB * (1.1 + float64(r>>8%100)/500)
		tasks := 1 << (r >> 16 % 6) // 1..32
		o := &knowledge.Object{
			Source:  knowledge.Source("ior"),
			Command: fmt.Sprintf("ior -a MPIIO -b 16m -t 1m -s 16 -np %d", tasks),
			Began:   began.Add(time.Duration(i) * time.Minute),
			Pattern: map[string]string{
				"api":          "MPIIO",
				"blockSize":    "16777216",
				"transferSize": "1048576",
				"segmentCount": "16",
				"tasks":        strconv.Itoa(tasks),
			},
		}
		o.Finished = o.Began.Add(90 * time.Second)
		for _, op := range []struct {
			name string
			mib  float64
		}{{"write", writeMiB}, {"read", readMiB}} {
			o.Summaries = append(o.Summaries, knowledge.Summary{
				Operation:  op.name,
				API:        "MPIIO",
				MaxMiBps:   op.mib * 1.05,
				MinMiBps:   op.mib * 0.95,
				MeanMiBps:  op.mib,
				StdDevMiB:  op.mib * 0.02,
				MeanOps:    op.mib / 16,
				MeanSec:    float64(16*16*tasks) / op.mib,
				Iterations: 3,
			})
			for it := 0; it < 3; it++ {
				o.Results = append(o.Results, knowledge.Result{
					Operation: op.name,
					Iteration: it,
					BwMiBps:   op.mib * (0.97 + 0.02*float64(it)),
					OpsPerSec: op.mib / 16,
					TotalSec:  float64(16*16*tasks) / op.mib,
				})
			}
		}
		objs = append(objs, o)
	}
	return objs
}

// decodeJSON decodes one JSON value and discards the rest of the body so
// the connection returns to the keep-alive pool.
func decodeJSON(r io.Reader, v any) error {
	err := json.NewDecoder(r).Decode(v)
	io.Copy(io.Discard, r)
	return err
}
