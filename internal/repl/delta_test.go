package repl

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/kdb"
	"repro/internal/vcs"
)

// TestFollowerDeltaCatchUpConverges drops a follower far enough behind
// that streaming catch-up is impossible (the primary's buffer is cleared
// by a compact-and-restart), with a version store attached on the
// primary. The restarted follower must converge byte-identically through
// the commit-delta path, shipping less than a full snapshot because it
// already holds the shared history's chunks.
func TestFollowerDeltaCatchUpConverges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "primary.kdb")
	primary := openDB(t, path)
	repo, err := vcs.Attach(primary)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 600; i++ {
		mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("v%d", i))
	}
	if _, _, err := repo.Commit("main", "repl", "campaign 1", 0); err != nil {
		t.Fatal(err)
	}
	srv1 := &kdb.Server{DB: primary, HeartbeatInterval: 20 * time.Millisecond}
	l1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	fpath := filepath.Join(dir, "replica.kdb")
	fdb := openDB(t, fpath)
	f := NewFollower(fdb, l1.Addr().String(), fastOpts())
	f.Start(context.Background())
	waitLSN(t, f.DB(), primary.LSN())
	f.Stop()

	// The follower is down while the primary ingests another campaign,
	// commits it, compacts, and restarts — coming back with an empty
	// catch-up buffer whose base is beyond the follower's LSN, so only a
	// snapshot path can catch it up.
	for i := 0; i < 50; i++ {
		mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("late%d", i))
	}
	if _, _, err := repo.Commit("main", "repl", "campaign 2", 0); err != nil {
		t.Fatal(err)
	}
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	srv1.Shutdown(shutCtx)
	shutCancel()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	primary = openDB(t, path)
	addr := servePrimary(t, primary)

	fullSize := int64(len(dump(t, primary)))
	deltaBefore := metDeltaBytes.Value()

	f2 := NewFollower(fdb, addr, fastOpts())
	f2.Start(context.Background())
	defer f2.Stop()
	waitLSN(t, f2.DB(), primary.LSN())
	if dump(t, primary) != dump(t, f2.DB()) {
		t.Error("follower did not converge byte-identically through delta catch-up")
	}
	shipped := metDeltaBytes.Value() - deltaBefore
	if shipped <= 0 {
		t.Fatal("delta catch-up shipped no chunks — full-snapshot fallback was taken")
	}
	if shipped >= fullSize {
		t.Errorf("delta shipped %d bytes, not less than the %d-byte full snapshot", shipped, fullSize)
	}
	t.Logf("delta catch-up shipped %d of %d snapshot bytes (%.1f%%)",
		shipped, fullSize, 100*float64(shipped)/float64(fullSize))

	// The stream continues past the delta-installed snapshot.
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "after")
	waitLSN(t, f2.DB(), primary.LSN())
	if dump(t, primary) != dump(t, f2.DB()) {
		t.Error("follower diverged after post-delta commit")
	}
}
