package repl

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func resetTracing(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		telemetry.SetTracing(false)
		telemetry.Traces.Reset()
	})
	telemetry.Traces.Reset()
}

// TestRouterTracedSpans pins the router's span shape: writes become
// "router.exec" spans targeting the primary, reads become "router.query"
// spans naming their target, and the engine's own spans nest beneath.
func TestRouterTracedSpans(t *testing.T) {
	resetTracing(t)
	telemetry.SetTracing(true)
	primary := openDB(t, "")
	rt := NewRouter(primary) // no replicas: reads fall back to the primary
	if _, err := rt.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Exec("INSERT INTO kv (v) VALUES (?)", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Query("SELECT v FROM kv"); err != nil {
		t.Fatal(err)
	}

	byName := map[string][]telemetry.SpanRecord{}
	for _, s := range telemetry.Traces.AllSpans() {
		byName[s.Name] = append(byName[s.Name], s)
	}
	execs := byName["router.exec"]
	if len(execs) != 2 {
		t.Fatalf("router.exec spans = %+v", execs)
	}
	for _, s := range execs {
		if s.ParentID != "" || !strings.Contains(s.AttrsText(), "target=primary") {
			t.Fatalf("router.exec span = %+v", s)
		}
	}
	queries := byName["router.query"]
	if len(queries) != 1 || !strings.Contains(queries[0].AttrsText(), "target=primary") ||
		!strings.Contains(queries[0].AttrsText(), "rows=1") {
		t.Fatalf("router.query spans = %+v", queries)
	}
	// The engine spans joined the router's traces rather than rooting anew.
	if got := byName["db.select"]; len(got) != 1 || got[0].ParentID != queries[0].SpanID {
		t.Fatalf("db.select span = %+v", got)
	}
	if got := byName["db.exec"]; len(got) != 2 {
		t.Fatalf("db.exec spans = %+v", got)
	} else {
		for _, s := range got {
			if s.TraceID != execs[0].TraceID && s.TraceID != execs[1].TraceID {
				t.Fatalf("db.exec span in foreign trace: %+v", s)
			}
		}
	}
}

// TestRouterHealthAggregatesWorstLag checks the /healthz rollup: the
// router reports the worst replica lag as its own repl_lag_* numbers.
func TestRouterHealthAggregatesWorstLag(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "x")
	fresh := &fakeReplica{db: primary}
	fresh.lsn.Store(primary.LSN())
	stale := &fakeReplica{db: primary} // still at LSN 0
	rt := NewRouter(primary, fresh, stale)

	st := rt.Health()
	if len(st.Replicas) != 2 {
		t.Fatalf("replicas = %+v", st.Replicas)
	}
	if st.ReplLagLSN != primary.LSN() {
		t.Errorf("ReplLagLSN = %d, want worst lag %d", st.ReplLagLSN, primary.LSN())
	}
	if st.Replicas[0].LagLSN != 0 || st.Replicas[1].LagLSN != primary.LSN() {
		t.Errorf("per-replica lag = %d / %d", st.Replicas[0].LagLSN, st.Replicas[1].LagLSN)
	}
}

// TestFollowerHealthMirrorsOwnLag: on a replica node the aggregate lag
// fields repeat the node's own lag, so /healthz consumers read
// repl_lag_lsn uniformly across roles.
func TestFollowerHealthMirrorsOwnLag(t *testing.T) {
	db := openDB(t, "")
	f := NewFollower(db, "kdb://primary:7070", Options{})
	f.mu.Lock()
	f.primaryLSN = 5
	f.mu.Unlock()

	st := f.Health()
	if st.LagLSN != 5 || st.ReplLagLSN != 5 {
		t.Errorf("lag = %d, aggregate = %d, want both 5", st.LagLSN, st.ReplLagLSN)
	}
}

// TestStatusJSONAlwaysCarriesLagFields: the aggregate lag fields have no
// omitempty, so a fully caught-up node still serves explicit zeros —
// scrapers never need to treat absence as a special case.
func TestStatusJSONAlwaysCarriesLagFields(t *testing.T) {
	data, err := json.Marshal(Status{Role: "primary"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"repl_lag_lsn":0`, `"repl_lag_seconds":0`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("status JSON missing %s: %s", want, data)
		}
	}
	// Epoch stays omitted on unsharded nodes.
	if strings.Contains(string(data), "shard_epoch") {
		t.Errorf("unsharded status leaked shard_epoch: %s", data)
	}
}
