package repl_test

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/repl"
	"repro/internal/schema"
)

func chaosSpec(t *testing.T) *campaign.Spec {
	t.Helper()
	var gens []core.Generator
	for _, ts := range []string{"256k", "1m", "4m"} {
		cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t " + ts + " -s 4 -F -C -i 2 -o /scratch/repl")
		if err != nil {
			t.Fatal(err)
		}
		cfg.NumTasks = 40
		cfg.TasksPerNode = 20
		gens = append(gens, core.IORGenerator{Config: cfg})
	}
	gens = append(gens, campaign.CommandGenerator{Label: "io500", Commands: []string{"io500 --tasks 40 --tasks-per-node 20"}})
	return campaign.FromGenerators("repl-chaos", 42, gens)
}

// TestChaosConvergenceUnderCampaign is the tentpole end-to-end scenario: a
// campaign batch-ingests knowledge into a replicated primary through the
// read router while one follower is killed (database closed) and later
// restarted from its on-disk log mid-run. Every node must end
// byte-identical, and the ingesting session must never observe a stale
// read.
func TestChaosConvergenceUnderCampaign(t *testing.T) {
	dir := t.TempDir()
	primary := chaosOpenDB(t, filepath.Join(dir, "primary.kdb"))
	addr := chaosServePrimary(t, primary)

	f1db := chaosOpenDB(t, filepath.Join(dir, "replica1.kdb"))
	f1 := repl.NewFollower(f1db, addr, chaosFastOpts())
	f1.Start(context.Background())
	f2 := repl.NewFollower(chaosOpenDB(t, filepath.Join(dir, "replica2.kdb")), addr, chaosFastOpts())
	f2.Start(context.Background())
	defer f2.Stop()

	rt := repl.NewRouter(primary, repl.LocalReplica{F: f1}, repl.LocalReplica{F: f2})
	st, err := schema.Wrap(rt)
	if err != nil {
		t.Fatal(err)
	}

	// Kill follower 1 on an early unit (stop its sync loop and close its
	// database, as a crashed process would) and restart it from disk on a
	// later unit, while ingestion keeps running.
	var killOnce, restartOnce sync.Once
	sched := &campaign.Scheduler{
		Store:     st,
		Workers:   2,
		BatchSize: 2,
		BeforeAttempt: func(u campaign.Unit, attempt int, m *cluster.Machine) {
			if u.Index >= 1 {
				killOnce.Do(func() {
					f1.Stop()
					if err := f1db.Close(); err != nil {
						t.Errorf("close killed replica: %v", err)
					}
				})
			}
			if u.Index >= 3 {
				restartOnce.Do(func() {
					db, err := kdb.Open(filepath.Join(dir, "replica1.kdb"))
					if err != nil {
						t.Errorf("reopen killed replica: %v", err)
						return
					}
					t.Cleanup(func() { db.Close() })
					f1 = repl.NewFollower(db, addr, chaosFastOpts())
					f1.Start(context.Background())
					t.Cleanup(f1.Stop)
				})
			}
		},
	}
	res, err := sched.Run(context.Background(), chaosSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 4 {
		t.Fatalf("ok = %d, want 4", res.OK)
	}
	if res.FinalLSN != primary.LSN() {
		t.Errorf("FinalLSN = %d, primary LSN = %d", res.FinalLSN, primary.LSN())
	}

	// The ingesting session's reads are correct immediately — replicas may
	// lag, but then the router must answer from the primary.
	metas, err := st.ListObjects()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Errorf("ListObjects through router = %d objects, want 3", len(metas))
	}

	// Both followers — including the one that was killed and restarted —
	// converge to the primary's exact bytes.
	chaosWaitLSN(t, f1.DB(), res.FinalLSN)
	chaosWaitLSN(t, f2.DB(), res.FinalLSN)
	want := chaosDump(t, primary)
	if got := chaosDump(t, f1.DB()); got != want {
		t.Error("restarted follower did not converge byte-identically")
	}
	if got := chaosDump(t, f2.DB()); got != want {
		t.Error("surviving follower did not converge byte-identically")
	}

	// With everyone converged, the writing session's reads now come from
	// replicas.
	pBefore, rBefore := rt.Stats()
	if _, err := st.ListObjects(); err != nil {
		t.Fatal(err)
	}
	pAfter, rAfter := rt.Stats()
	if pAfter != pBefore || rAfter <= rBefore {
		t.Errorf("post-convergence reads should hit replicas: primary %d->%d, replica %d->%d",
			pBefore, pAfter, rBefore, rAfter)
	}
}

// The helpers below are chaos-local copies of the package's test
// helpers: this file lives in the external repl_test package because it
// imports schema, which itself imports repl for shard-side routing.

func chaosFastOpts() repl.Options {
	return repl.Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		RetryMin:         10 * time.Millisecond,
		RetryMax:         100 * time.Millisecond,
	}
}

func chaosServePrimary(t *testing.T, db *kdb.DB) string {
	t.Helper()
	srv := &kdb.Server{DB: db, HeartbeatInterval: 50 * time.Millisecond}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return l.Addr().String()
}

func chaosOpenDB(t *testing.T, path string) *kdb.DB {
	t.Helper()
	db, err := kdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func chaosWaitLSN(t *testing.T, db *kdb.DB, lsn int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.LSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for LSN %d, stuck at %d", lsn, db.LSN())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosDump(t *testing.T, db *kdb.DB) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
