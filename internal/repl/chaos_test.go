package repl

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/schema"
)

func chaosSpec(t *testing.T) *campaign.Spec {
	t.Helper()
	var gens []core.Generator
	for _, ts := range []string{"256k", "1m", "4m"} {
		cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t " + ts + " -s 4 -F -C -i 2 -o /scratch/repl")
		if err != nil {
			t.Fatal(err)
		}
		cfg.NumTasks = 40
		cfg.TasksPerNode = 20
		gens = append(gens, core.IORGenerator{Config: cfg})
	}
	gens = append(gens, campaign.CommandGenerator{Label: "io500", Commands: []string{"io500 --tasks 40 --tasks-per-node 20"}})
	return campaign.FromGenerators("repl-chaos", 42, gens)
}

// TestChaosConvergenceUnderCampaign is the tentpole end-to-end scenario: a
// campaign batch-ingests knowledge into a replicated primary through the
// read router while one follower is killed (database closed) and later
// restarted from its on-disk log mid-run. Every node must end
// byte-identical, and the ingesting session must never observe a stale
// read.
func TestChaosConvergenceUnderCampaign(t *testing.T) {
	dir := t.TempDir()
	primary := openDB(t, filepath.Join(dir, "primary.kdb"))
	addr := servePrimary(t, primary)

	f1db := openDB(t, filepath.Join(dir, "replica1.kdb"))
	f1 := NewFollower(f1db, addr, fastOpts())
	f1.Start(context.Background())
	f2 := NewFollower(openDB(t, filepath.Join(dir, "replica2.kdb")), addr, fastOpts())
	f2.Start(context.Background())
	defer f2.Stop()

	rt := NewRouter(primary, LocalReplica{F: f1}, LocalReplica{F: f2})
	st, err := schema.Wrap(rt)
	if err != nil {
		t.Fatal(err)
	}

	// Kill follower 1 on an early unit (stop its sync loop and close its
	// database, as a crashed process would) and restart it from disk on a
	// later unit, while ingestion keeps running.
	var killOnce, restartOnce sync.Once
	sched := &campaign.Scheduler{
		Store:     st,
		Workers:   2,
		BatchSize: 2,
		BeforeAttempt: func(u campaign.Unit, attempt int, m *cluster.Machine) {
			if u.Index >= 1 {
				killOnce.Do(func() {
					f1.Stop()
					if err := f1db.Close(); err != nil {
						t.Errorf("close killed replica: %v", err)
					}
				})
			}
			if u.Index >= 3 {
				restartOnce.Do(func() {
					db, err := kdb.Open(filepath.Join(dir, "replica1.kdb"))
					if err != nil {
						t.Errorf("reopen killed replica: %v", err)
						return
					}
					t.Cleanup(func() { db.Close() })
					f1 = NewFollower(db, addr, fastOpts())
					f1.Start(context.Background())
					t.Cleanup(f1.Stop)
				})
			}
		},
	}
	res, err := sched.Run(context.Background(), chaosSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 4 {
		t.Fatalf("ok = %d, want 4", res.OK)
	}
	if res.FinalLSN != primary.LSN() {
		t.Errorf("FinalLSN = %d, primary LSN = %d", res.FinalLSN, primary.LSN())
	}

	// The ingesting session's reads are correct immediately — replicas may
	// lag, but then the router must answer from the primary.
	metas, err := st.ListObjects()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Errorf("ListObjects through router = %d objects, want 3", len(metas))
	}

	// Both followers — including the one that was killed and restarted —
	// converge to the primary's exact bytes.
	waitLSN(t, f1.DB(), res.FinalLSN)
	waitLSN(t, f2.DB(), res.FinalLSN)
	want := dump(t, primary)
	if got := dump(t, f1.DB()); got != want {
		t.Error("restarted follower did not converge byte-identically")
	}
	if got := dump(t, f2.DB()); got != want {
		t.Error("surviving follower did not converge byte-identically")
	}

	// With everyone converged, the writing session's reads now come from
	// replicas.
	pBefore, rBefore := rt.Stats()
	if _, err := st.ListObjects(); err != nil {
		t.Fatal(err)
	}
	pAfter, rAfter := rt.Stats()
	if pAfter != pBefore || rAfter <= rBefore {
		t.Errorf("post-convergence reads should hit replicas: primary %d->%d, replica %d->%d",
			pBefore, pAfter, rBefore, rAfter)
	}
}
