package repl

import (
	"testing"

	"repro/internal/kdb"
)

// PrimaryLSN must see commits made by OTHER sessions through the same
// primary — that's what distinguishes it from Router.LSN (this process's
// last write) and what the API's cache invalidation polls it for.
func TestRouterPrimaryLSN(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	rt := NewRouter(primary, &fakeReplica{db: primary})

	if got, want := rt.PrimaryLSN(), primary.LSN(); got != want {
		t.Fatalf("PrimaryLSN = %d, want primary's %d", got, want)
	}

	// A write directly on the primary (another process, another router)
	// is invisible to rt.LSN but not to PrimaryLSN.
	before := rt.LSN()
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "foreign")
	if rt.LSN() != before {
		t.Fatalf("router last-write LSN moved on a foreign write: %d", rt.LSN())
	}
	if got, want := rt.PrimaryLSN(), primary.LSN(); got != want {
		t.Fatalf("PrimaryLSN after foreign write = %d, want %d", got, want)
	}

	// A write through the router advances both views identically.
	res, err := rt.Exec("INSERT INTO kv (v) VALUES (?)", "mine")
	if err != nil {
		t.Fatal(err)
	}
	if rt.PrimaryLSN() < res.LSN {
		t.Fatalf("PrimaryLSN %d below routed write's LSN %d", rt.PrimaryLSN(), res.LSN)
	}
}

// Over a kdb:// primary the remote client's LSN is a passive high-water
// mark: it only advances when this process's traffic carries a newer
// value. A router that routes all reads to replicas therefore never sees
// a foreign writer's commit through PrimaryLSN — ProbePrimaryLSN must
// issue the status round trip that does.
func TestRouterProbePrimaryLSNSeesForeignWrites(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	addr := servePrimary(t, primary)

	conn, err := kdb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rt := NewRouter(conn, &fakeReplica{db: primary})
	// One routed write so the remote's passive mark is non-zero.
	if _, err := rt.Exec("INSERT INTO kv (v) VALUES (?)", "mine"); err != nil {
		t.Fatal(err)
	}
	before := rt.PrimaryLSN()

	// A foreign writer commits directly on the primary. The router's
	// passive view must not move (no traffic carried the new LSN)...
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "foreign")
	if got := rt.PrimaryLSN(); got != before {
		t.Fatalf("passive PrimaryLSN moved on a foreign write: %d -> %d", before, got)
	}
	// ...but the active probe sees it immediately.
	if got, want := rt.ProbePrimaryLSN(), primary.LSN(); got != want {
		t.Fatalf("ProbePrimaryLSN = %d, want primary's %d", got, want)
	}
	// And the probe's side effect advanced the passive mark too.
	if got := rt.PrimaryLSN(); got != primary.LSN() {
		t.Fatalf("passive PrimaryLSN after probe = %d, want %d", got, primary.LSN())
	}
}
