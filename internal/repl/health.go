package repl

import (
	"encoding/json"
	"net/http"

	"repro/internal/kdb"
)

// Status is the replication health payload served at /healthz by both the
// explorer and `iokc servedb`.
type Status struct {
	Role string `json:"role"`
	// Addr is this node's advertised address; PrimaryAddr is the primary
	// a replica follows.
	Addr        string  `json:"addr,omitempty"`
	PrimaryAddr string  `json:"primary_addr,omitempty"`
	AppliedLSN  int64   `json:"applied_lsn"`
	PrimaryLSN  int64   `json:"primary_lsn,omitempty"`
	LagLSN      int64   `json:"lag_lsn"`
	LagSeconds  float64 `json:"lag_seconds"`
	Resyncs     int64   `json:"resyncs,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
	// Epoch is the shard-map epoch this node serves (coordinator nodes and
	// stores opened from a shard:// URL); 0 when unsharded. Load balancers
	// use it to spot nodes still advertising a superseded partition map.
	Epoch int64 `json:"shard_epoch,omitempty"`
	// ReplLagLSN and ReplLagSeconds aggregate the worst replica lag under
	// this node (0 with no replicas or when all are caught up) — the one
	// number a load balancer needs to decide whether to drain. They mirror
	// the repl_lag_lsn / repl_lag_seconds Prometheus gauges.
	ReplLagLSN     int64    `json:"repl_lag_lsn"`
	ReplLagSeconds float64  `json:"repl_lag_seconds"`
	Replicas       []Status `json:"replicas,omitempty"`
}

// HealthHandler serves the given status snapshot as JSON. A replica that
// has never reached its primary still answers 200 — liveness and
// replication lag are separate signals, and the lag fields carry the bad
// news.
func HealthHandler(status func() Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(status())
	})
}

// PrimaryStatus builds the status function for a node serving its own
// authoritative database.
func PrimaryStatus(db *kdb.DB, addr string) func() Status {
	return func() Status {
		return Status{Role: "primary", Addr: addr, AppliedLSN: db.LSN()}
	}
}

// Health reports the Router's view: the primary's position plus each
// replica's last-known applied LSN.
func (rt *Router) Health() Status {
	st := Status{Role: "primary", AppliedLSN: rt.LSN()}
	if l, ok := rt.primary.(interface{ LSN() int64 }); ok {
		st.AppliedLSN = l.LSN()
	}
	for _, rs := range rt.replicas {
		rst := Status{Role: "replica", AppliedLSN: rs.knownLSN.Load()}
		if ns, err := rs.r.Status(); err == nil {
			rst.AppliedLSN = ns.LSN
			rst.Addr = ns.Addr
			rs.knownLSN.Store(ns.LSN)
		} else {
			rst.LastError = err.Error()
		}
		if lag := st.AppliedLSN - rst.AppliedLSN; lag > 0 {
			rst.LagLSN = lag
		}
		if rst.LagLSN > st.ReplLagLSN {
			st.ReplLagLSN = rst.LagLSN
		}
		if rst.LagSeconds > st.ReplLagSeconds {
			st.ReplLagSeconds = rst.LagSeconds
		}
		st.Replicas = append(st.Replicas, rst)
	}
	return st
}
