package repl

// Replication observability. Handles resolve once at package init against
// the process-wide registry, matching the kdb/campaign convention. The lag
// gauges reflect the most recently active follower in this process;
// per-follower numbers are always available exactly via Follower.Health.

import "repro/internal/telemetry"

var (
	metLagLSN        *telemetry.Gauge
	metLagSeconds    *telemetry.Gauge
	metSnapshotBytes *telemetry.Counter
	metDeltaBytes    *telemetry.Counter
	metResyncTotal   *telemetry.Counter
	metAppliedTotal  *telemetry.Counter
	metRouterPrimary *telemetry.Counter
	metRouterReplica *telemetry.Counter
)

func init() {
	reg := telemetry.Default()
	metLagLSN = reg.Gauge("repl_lag_lsn")
	metLagSeconds = reg.Gauge("repl_lag_seconds")
	metSnapshotBytes = reg.Counter("repl_snapshot_bytes")
	metDeltaBytes = reg.Counter("vcs_delta_bytes")
	metResyncTotal = reg.Counter("repl_resync_total")
	metAppliedTotal = reg.Counter("repl_applied_total")
	metRouterPrimary = reg.Counter(telemetry.Label("repl_router_reads_total", "target", "primary"))
	metRouterReplica = reg.Counter(telemetry.Label("repl_router_reads_total", "target", "replica"))
}
