// Package repl provides WAL-shipping replication for the knowledge store:
// a Follower keeps a local kdb database converged with a primary served
// over the kdb wire protocol, and a Router spreads reads across replicas
// without ever serving a session a state older than its own writes.
//
// The primary needs no cooperation beyond kdb.Server's "replicate",
// "snapshot", and "status" verbs: a follower bootstraps from a full
// snapshot when it is behind the primary's catch-up buffer, then applies
// the exact committed log records in LSN order, appending the same bytes
// to its own log — so replica database files replay, and dump,
// byte-identically to the primary's.
package repl

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"time"

	"repro/internal/kdb"
	"repro/internal/telemetry"
)

// Options tunes a Follower. The zero value is production-ready; tests
// shrink the timeouts to keep chaos scenarios fast.
type Options struct {
	// HeartbeatTimeout bounds each stream receive. The primary sends a
	// heartbeat every Server.HeartbeatInterval while idle, so a receive
	// timeout means the primary is unreachable and the follower
	// reconnects. Default 5s.
	HeartbeatTimeout time.Duration
	// RetryMin/RetryMax bound the exponential reconnect backoff. A sync
	// attempt that made progress resets the backoff to RetryMin.
	// Defaults 100ms and 5s.
	RetryMin time.Duration
	RetryMax time.Duration
	// Trace, when set, records snapshot/catch-up/apply phases as child
	// spans.
	Trace *telemetry.Span
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = 5 * time.Second
	}
	if out.RetryMin <= 0 {
		out.RetryMin = 100 * time.Millisecond
	}
	if out.RetryMax <= 0 {
		out.RetryMax = 5 * time.Second
	}
	return out
}

// Follower keeps db converged with the primary at primaryAddr. Reads on
// the local database are always safe; they simply observe a prefix of the
// primary's history.
type Follower struct {
	db   *kdb.DB
	addr string
	opt  Options

	mu          sync.Mutex
	primaryLSN  int64
	lastContact time.Time
	lastApply   time.Time
	resyncs     int64
	lastErr     error

	cancel context.CancelFunc
	done   chan struct{}
}

// NewFollower wires a follower for the local database; call Start to
// begin syncing. The address may carry a kdb:// scheme.
func NewFollower(db *kdb.DB, primaryAddr string, opt Options) *Follower {
	return &Follower{
		db:   db,
		addr: strings.TrimPrefix(primaryAddr, "kdb://"),
		opt:  opt.withDefaults(),
	}
}

// DB returns the follower's local database.
func (f *Follower) DB() *kdb.DB { return f.db }

// Start launches the sync loop; it runs until ctx is cancelled or Stop is
// called.
func (f *Follower) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	f.cancel = cancel
	f.done = make(chan struct{})
	go func() {
		defer close(f.done)
		f.run(ctx)
	}()
}

// Stop cancels the sync loop and waits for it to exit.
func (f *Follower) Stop() {
	if f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
}

// run reconnects forever with exponential backoff; any attempt that
// applied records or installed a snapshot resets the backoff, so a
// follower that keeps losing a flaky link still makes steady progress.
func (f *Follower) run(ctx context.Context) {
	backoff := f.opt.RetryMin
	for {
		progressed, err := f.syncOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		if err == nil && progressed {
			// A snapshot was installed; reconnect immediately to stream
			// from the new offset.
			backoff = f.opt.RetryMin
			continue
		}
		f.mu.Lock()
		f.lastErr = err
		f.resyncs++
		f.mu.Unlock()
		metResyncTotal.Inc()
		if progressed {
			backoff = f.opt.RetryMin
		} else if backoff < f.opt.RetryMax {
			backoff *= 2
			if backoff > f.opt.RetryMax {
				backoff = f.opt.RetryMax
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// syncOnce runs one stream session: dial from the local LSN, then apply
// records until the connection fails or the primary demands a snapshot.
// It returns progressed=true if any record was applied or a snapshot was
// installed; a (true, nil) return means "snapshot installed, reconnect
// now".
func (f *Follower) syncOnce(ctx context.Context) (progressed bool, err error) {
	span := f.opt.Trace.StartChild("repl catch-up")
	defer span.End()
	stream, err := kdb.DialReplication(f.addr, f.db.LSN(), f.opt.HeartbeatTimeout)
	if err != nil {
		return false, err
	}
	defer stream.Close()
	stop := context.AfterFunc(ctx, func() { stream.Close() })
	defer stop()
	for {
		ev, err := stream.Recv()
		if err != nil {
			return progressed, err
		}
		f.noteContact(ev.PrimaryLSN)
		switch {
		case ev.SnapshotRequired:
			if serr := f.snapshot(ctx); serr != nil {
				return progressed, serr
			}
			return true, nil
		case ev.Heartbeat:
			f.updateLag()
		default:
			if aerr := f.db.ApplyRecord(ev.LSN, ev.Entry); aerr != nil {
				// Any apply failure (LSN gap from divergence, corrupt
				// record) is unrecoverable by streaming; fall back to a
				// full snapshot.
				if serr := f.snapshot(ctx); serr != nil {
					return progressed, serr
				}
				return true, nil
			}
			progressed = true
			metAppliedTotal.Inc()
			f.noteApply(ev.PrimaryLSN)
		}
	}
}

// snapshot replaces the local database with the primary's current state.
// It first attempts a commit-delta transfer — negotiating over the
// content-addressed chunks the follower already holds, so only changed
// table segments cross the wire — and falls back to the classic full
// snapshot on any failure (old primaries without the delta verb, chunk
// mismatches, anything). Both paths converge byte-identically: the delta
// path reassembles and re-verifies the exact snapshot stream before
// restoring it.
func (f *Follower) snapshot(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	span := f.opt.Trace.StartChild("repl snapshot")
	defer span.End()
	r, err := kdb.Dial(f.addr)
	if err != nil {
		return err
	}
	defer r.Close()
	data, lsn, err := f.deltaSnapshot(r)
	if err != nil {
		data, lsn, err = r.Snapshot()
		if err != nil {
			return err
		}
		metSnapshotBytes.Add(int64(len(data)))
	}
	if err := f.db.RestoreSnapshot(data); err != nil {
		return err
	}
	f.noteContact(lsn)
	f.noteApply(lsn)
	return nil
}

// deltaSnapshot fetches the primary's snapshot as a chunk delta. The
// have-set is the chunks of the follower's own current snapshot plus any
// commit chunks in its local version store (vcs_chunks) — so a follower
// that shares committed history with the primary transfers only what
// changed since.
func (f *Follower) deltaSnapshot(r *kdb.Remote) ([]byte, int64, error) {
	have := map[string][]byte{}
	var buf bytes.Buffer
	if _, err := f.db.WriteSnapshot(&buf); err != nil {
		return nil, 0, err
	}
	chunks, err := kdb.ChunkSnapshot(buf.Bytes(), 0)
	if err != nil {
		return nil, 0, err
	}
	for _, c := range chunks {
		have[c.Hash] = c.Data
	}
	// The local commit store, when present, contributes every chunk it
	// retains; a missing vcs_chunks table just means no version history.
	if rows, err := f.db.Query("SELECT hash, data FROM vcs_chunks"); err == nil {
		for rows.Next() {
			row := rows.Row()
			h, _ := row[0].(string)
			s, _ := row[1].(string)
			if h != "" {
				have[h] = []byte(s)
			}
		}
	}
	keys := make([]string, 0, len(have))
	for h := range have {
		keys = append(keys, h)
	}
	manifest, shipped, lsn, err := r.SnapshotDelta(keys)
	if err != nil {
		return nil, 0, err
	}
	for _, c := range shipped {
		metDeltaBytes.Add(int64(len(c)))
	}
	data, err := kdb.ReassembleSnapshot(manifest, shipped, func(hash string) []byte {
		return have[hash]
	})
	if err != nil {
		return nil, 0, err
	}
	return data, lsn, nil
}

func (f *Follower) noteContact(primaryLSN int64) {
	f.mu.Lock()
	f.lastContact = time.Now()
	if primaryLSN > f.primaryLSN {
		f.primaryLSN = primaryLSN
	}
	f.mu.Unlock()
}

func (f *Follower) noteApply(primaryLSN int64) {
	f.mu.Lock()
	f.lastApply = time.Now()
	if primaryLSN > f.primaryLSN {
		f.primaryLSN = primaryLSN
	}
	f.mu.Unlock()
	f.updateLag()
}

// updateLag refreshes the process-wide lag gauges from this follower's
// view of the primary.
func (f *Follower) updateLag() {
	st := f.Health()
	metLagLSN.Set(float64(st.LagLSN))
	metLagSeconds.Set(st.LagSeconds)
}

// Status implements the Router's Replica probe for a local follower.
func (f *Follower) Status() (kdb.NodeStatus, error) {
	return kdb.NodeStatus{Role: "replica", LSN: f.db.LSN()}, nil
}

// Health reports the follower's replication position for /healthz.
func (f *Follower) Health() Status {
	applied := f.db.LSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Role:        "replica",
		PrimaryAddr: f.addr,
		AppliedLSN:  applied,
		PrimaryLSN:  f.primaryLSN,
		Resyncs:     f.resyncs,
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	if lag := f.primaryLSN - applied; lag > 0 {
		st.LagLSN = lag
		if !f.lastApply.IsZero() {
			st.LagSeconds = time.Since(f.lastApply).Seconds()
		}
	}
	// A replica's own lag is also its aggregate lag: /healthz consumers
	// read repl_lag_* uniformly across roles.
	st.ReplLagLSN = st.LagLSN
	st.ReplLagSeconds = st.LagSeconds
	return st
}
