package repl

import (
	"errors"
	"io"
	"strconv"
	"sync/atomic"

	"repro/internal/kdb"
	"repro/internal/telemetry"
)

// Replica is a read target the Router can route queries to: a remote
// served replica (*kdb.Remote) or an in-process *Follower's database
// wrapped by LocalReplica. Status is the staleness probe.
type Replica interface {
	Query(query string, args ...any) (*kdb.Rows, error)
	QueryRow(query string, args ...any) ([]any, error)
	Status() (kdb.NodeStatus, error)
}

var _ Replica = (*kdb.Remote)(nil)

// tracedQuerier is the read-only tracing surface a Replica may offer;
// *kdb.Remote does (via kdb.TracedConn) and LocalReplica does below. The
// router queries through it when a trace is active so replica-side spans
// join the request's trace.
type tracedQuerier interface {
	QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error)
}

// replicaQuery routes through the replica's traced surface when possible.
func replicaQuery(r Replica, tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error) {
	if tc.Valid() {
		if t, ok := r.(tracedQuerier); ok {
			return t.QueryTraced(tc, query, args...)
		}
	}
	return r.Query(query, args...)
}

// connQuery and connExec route through a Conn's traced surface when
// possible.
func connQuery(c kdb.Conn, tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error) {
	if tc.Valid() {
		if t, ok := c.(kdb.TracedConn); ok {
			return t.QueryTraced(tc, query, args...)
		}
	}
	return c.Query(query, args...)
}

func connExec(c kdb.Conn, tc telemetry.TraceContext, query string, args ...any) (kdb.Result, error) {
	if tc.Valid() {
		if t, ok := c.(kdb.TracedConn); ok {
			return t.ExecTraced(tc, query, args...)
		}
	}
	return c.Exec(query, args...)
}

// LocalReplica adapts an in-process Follower into a Replica, so a node
// can serve its own follower copy without a network hop.
type LocalReplica struct{ F *Follower }

func (l LocalReplica) Query(query string, args ...any) (*kdb.Rows, error) {
	return l.F.db.Query(query, args...)
}

func (l LocalReplica) QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error) {
	return l.F.db.QueryTraced(tc, query, args...)
}

func (l LocalReplica) QueryRow(query string, args ...any) ([]any, error) {
	return l.F.db.QueryRow(query, args...)
}

func (l LocalReplica) Status() (kdb.NodeStatus, error) { return l.F.Status() }

// Router is a kdb.Conn that sends writes to the primary and reads to
// replicas, with read-your-writes consistency: a session's reads stick to
// the primary until some replica has applied that session's last write.
// Replica staleness is judged against a cached last-known LSN, refreshed
// by a cheap "status" probe only when the cache is insufficient — a
// session that never writes never probes.
//
// The Router itself implements kdb.Conn as one shared session, which is
// the conservative default (all writes through the Router gate all reads
// through the Router). Callers wanting finer-grained stickiness create
// per-user sessions with Session().
type Router struct {
	primary  kdb.Conn
	replicas []*replicaState
	rr       atomic.Uint64
	def      Session

	primaryReads atomic.Int64
	replicaReads atomic.Int64
}

type replicaState struct {
	r        Replica
	knownLSN atomic.Int64
}

// NewRouter fronts primary with the given read replicas. With no
// replicas every call goes to the primary, so the Router is a safe
// drop-in even for single-node deployments.
func NewRouter(primary kdb.Conn, replicas ...Replica) *Router {
	rt := &Router{primary: primary}
	for _, r := range replicas {
		rt.replicas = append(rt.replicas, &replicaState{r: r})
	}
	rt.def.rt = rt
	return rt
}

// Session returns an independent routing session whose reads are gated
// only by its own writes.
func (rt *Router) Session() *Session { return &Session{rt: rt} }

// LSN reports the highest write LSN observed through the Router's shared
// session (campaign ingest records it as the run's final LSN).
func (rt *Router) LSN() int64 { return rt.def.lastWrite.Load() }

// PrimaryLSN reports the primary's committed position when the primary
// connection exposes one (embedded databases, coordinators, and remote
// clients all do), falling back to the router's own last-write LSN. Unlike
// Health it never probes replicas, so it is cheap enough for cache-validity
// checks on the read path.
func (rt *Router) PrimaryLSN() int64 {
	lsn := rt.LSN()
	if l, ok := rt.primary.(interface{ LSN() int64 }); ok {
		if p := l.LSN(); p > lsn {
			lsn = p
		}
	}
	return lsn
}

// ProbePrimaryLSN actively asks the primary for its committed position
// via a status round trip when the primary connection supports one
// (remote clients do; the probe also advances their passive high-water
// mark), falling back to PrimaryLSN. Unlike PrimaryLSN it can observe
// commits made by other processes even while this router routes all
// reads to replicas — the API's cache invalidation polls it for exactly
// that reason.
func (rt *Router) ProbePrimaryLSN() int64 {
	lsn := rt.PrimaryLSN()
	if s, ok := rt.primary.(interface {
		Status() (kdb.NodeStatus, error)
	}); ok {
		if st, err := s.Status(); err == nil && st.LSN > lsn {
			lsn = st.LSN
		}
	}
	return lsn
}

// Stats reports how many reads went to the primary vs replicas.
func (rt *Router) Stats() (primary, replica int64) {
	return rt.primaryReads.Load(), rt.replicaReads.Load()
}

func (rt *Router) Exec(query string, args ...any) (kdb.Result, error) {
	return rt.def.Exec(query, args...)
}

func (rt *Router) ExecTraced(tc telemetry.TraceContext, query string, args ...any) (kdb.Result, error) {
	return rt.def.ExecTraced(tc, query, args...)
}

func (rt *Router) Query(query string, args ...any) (*kdb.Rows, error) {
	return rt.def.Query(query, args...)
}

func (rt *Router) QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error) {
	return rt.def.QueryTraced(tc, query, args...)
}

func (rt *Router) QueryRow(query string, args ...any) ([]any, error) {
	return rt.def.QueryRow(query, args...)
}

func (rt *Router) Tables() []string { return rt.primary.Tables() }

// Batch forwards to the primary's Batcher when it has one, tracking the
// LSNs the batched execs report so read-your-writes covers batched
// ingest. A primary without batching (e.g. a remote connection) gets
// statement-at-a-time semantics, matching the schema layer's own
// fallback.
func (rt *Router) Batch(fn func(exec kdb.ExecFunc) error) error {
	return rt.def.Batch(fn)
}

// Close closes the primary connection and any replicas that hold
// resources.
func (rt *Router) Close() error {
	err := rt.primary.Close()
	for _, rs := range rt.replicas {
		if c, ok := rs.r.(io.Closer); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

var (
	_ kdb.Conn       = (*Router)(nil)
	_ kdb.TracedConn = (*Router)(nil)
	_ kdb.Batcher    = (*Router)(nil)
	_ kdb.Conn       = (*Session)(nil)
	_ kdb.TracedConn = (*Session)(nil)
	_ tracedQuerier  = LocalReplica{}
)

// Session tracks one logical client's last write so its reads are never
// served from a replica that has not applied it.
type Session struct {
	rt        *Router
	lastWrite atomic.Int64
}

func (s *Session) noteWrite(lsn int64) {
	for {
		cur := s.lastWrite.Load()
		if lsn <= cur || s.lastWrite.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Exec sends the mutation to the primary and remembers its LSN.
func (s *Session) Exec(query string, args ...any) (kdb.Result, error) {
	return s.ExecTraced(telemetry.TraceContext{}, query, args...)
}

// ExecTraced implements kdb.TracedConn: writes always target the primary,
// recorded as a "router.exec" span.
func (s *Session) ExecTraced(tc telemetry.TraceContext, query string, args ...any) (kdb.Result, error) {
	hop := telemetry.StartHop(tc, "router.exec")
	hop.SetSQL(query)
	hop.Attr("target", "primary")
	res, err := connExec(s.rt.primary, hop.Context(), query, args...)
	if err != nil {
		hop.Fail(err)
		return res, err
	}
	s.noteWrite(res.LSN)
	hop.AttrInt("rows_affected", int64(res.RowsAffected))
	hop.End()
	return res, nil
}

// eachFresh offers sufficiently fresh replicas to fn in round-robin order
// until fn reports success, and returns whether any attempt succeeded.
// Freshness is judged against the cached last-known LSN; the status probe
// only fires when the cache is insufficient, so a session that never
// writes never probes. A replica whose probe or read fails has its cached
// LSN invalidated (a dead replica's stale cache would otherwise keep
// qualifying forever) and the remaining fresh replicas are tried before
// the caller falls back to the primary.
func (s *Session) eachFresh(fn func(int, Replica) bool) bool {
	rt := s.rt
	n := len(rt.replicas)
	if n == 0 {
		return false
	}
	need := s.lastWrite.Load()
	start := rt.rr.Add(1)
	for i := 0; i < n; i++ {
		idx := int((start + uint64(i)) % uint64(n))
		rs := rt.replicas[idx]
		if rs.knownLSN.Load() < need {
			st, err := rs.r.Status()
			if err != nil {
				rs.knownLSN.Store(-1)
				continue
			}
			rs.knownLSN.Store(st.LSN)
			if st.LSN < need {
				continue
			}
		}
		if fn(idx, rs.r) {
			return true
		}
		rs.knownLSN.Store(-1)
	}
	return false
}

// Query routes to a sufficiently fresh replica, trying the others when one
// fails, and falls back to the primary only when no replica qualifies or
// every fresh one errored.
func (s *Session) Query(query string, args ...any) (*kdb.Rows, error) {
	return s.QueryTraced(telemetry.TraceContext{}, query, args...)
}

// QueryTraced implements kdb.TracedConn: the routing decision becomes a
// "router.query" span annotated with the target chosen (replica index or
// primary fallback), and the chosen backend's own spans nest under it.
func (s *Session) QueryTraced(tc telemetry.TraceContext, query string, args ...any) (*kdb.Rows, error) {
	hop := telemetry.StartHop(tc, "router.query")
	hop.SetSQL(query)
	var rows *kdb.Rows
	chosen := -1
	if s.eachFresh(func(idx int, rep Replica) bool {
		r, err := replicaQuery(rep, hop.Context(), query, args...)
		if err != nil {
			return false
		}
		rows, chosen = r, idx
		return true
	}) {
		s.rt.replicaReads.Add(1)
		metRouterReplica.Inc()
		hop.Attr("target", "replica "+strconv.Itoa(chosen))
		hop.AttrInt("rows", int64(rows.Len()))
		hop.End()
		return rows, nil
	}
	s.rt.primaryReads.Add(1)
	metRouterPrimary.Inc()
	hop.Attr("target", "primary")
	rows, err := connQuery(s.rt.primary, hop.Context(), query, args...)
	if err != nil {
		hop.Fail(err)
		return nil, err
	}
	hop.AttrInt("rows", int64(rows.Len()))
	hop.End()
	return rows, nil
}

// QueryRow routes like Query; a replica's ErrNoRows is a real answer, not
// a failure, so it does not trigger failover or primary fallback.
func (s *Session) QueryRow(query string, args ...any) ([]any, error) {
	var row []any
	var rowErr error
	if s.eachFresh(func(_ int, rep Replica) bool {
		r, err := rep.QueryRow(query, args...)
		if err != nil && !errors.Is(err, kdb.ErrNoRows) {
			return false
		}
		row, rowErr = r, err
		return true
	}) {
		s.rt.replicaReads.Add(1)
		metRouterReplica.Inc()
		return row, rowErr
	}
	s.rt.primaryReads.Add(1)
	metRouterPrimary.Inc()
	return s.rt.primary.QueryRow(query, args...)
}

func (s *Session) Tables() []string { return s.rt.primary.Tables() }

// Close is a no-op: sessions borrow the Router's shared connections, and
// closing one session must not tear the Router down under its siblings.
// Router.Close is the single teardown path.
func (s *Session) Close() error { return nil }

// Batch applies fn atomically on the primary when it supports batching,
// recording each exec's LSN for read-your-writes.
func (s *Session) Batch(fn func(exec kdb.ExecFunc) error) error {
	if b, ok := s.rt.primary.(kdb.Batcher); ok {
		return b.Batch(func(exec kdb.ExecFunc) error {
			return fn(func(query string, args ...any) (kdb.Result, error) {
				res, err := exec(query, args...)
				if err == nil {
					s.noteWrite(res.LSN)
				}
				return res, err
			})
		})
	}
	return fn(s.Exec)
}
