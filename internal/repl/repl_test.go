package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kdb"
)

// fastOpts keeps reconnect/heartbeat cycles short so failure scenarios
// resolve in milliseconds even under -race.
func fastOpts() Options {
	return Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		RetryMin:         10 * time.Millisecond,
		RetryMax:         100 * time.Millisecond,
	}
}

// servePrimary starts a replication-capable server over db and returns
// its address.
func servePrimary(t *testing.T, db *kdb.DB) string {
	t.Helper()
	srv := &kdb.Server{DB: db, HeartbeatInterval: 50 * time.Millisecond}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return l.Addr().String()
}

func openDB(t *testing.T, path string) *kdb.DB {
	t.Helper()
	db, err := kdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// waitLSN polls until db has applied at least lsn.
func waitLSN(t *testing.T, db *kdb.DB, lsn int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.LSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for LSN %d, stuck at %d", lsn, db.LSN())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dump renders the database's deterministic snapshot serialization; two
// databases are converged replicas exactly when their dumps are equal.
func dump(t *testing.T, db *kdb.DB) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func mustExec(t *testing.T, db *kdb.DB, sql string, args ...any) kdb.Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestFollowerStreamsCommits(t *testing.T) {
	primary := openDB(t, "")
	addr := servePrimary(t, primary)
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")

	f := NewFollower(openDB(t, ""), addr, fastOpts())
	f.Start(context.Background())
	defer f.Stop()

	for i := 0; i < 20; i++ {
		mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("v%d", i))
	}
	waitLSN(t, f.DB(), primary.LSN())
	if d1, d2 := dump(t, primary), dump(t, f.DB()); d1 != d2 {
		t.Errorf("follower diverged:\n--- primary ---\n%s--- follower ---\n%s", d1, d2)
	}
	st := f.Health()
	if st.Role != "replica" || st.AppliedLSN != primary.LSN() || st.LagLSN != 0 {
		t.Errorf("health = %+v", st)
	}
}

func TestFollowerSnapshotBootstrap(t *testing.T) {
	// A compacted-then-reopened primary has an empty catch-up buffer and a
	// non-zero base LSN, so a fresh follower cannot stream from zero and
	// must bootstrap from a full snapshot.
	dir := t.TempDir()
	path := filepath.Join(dir, "primary.kdb")
	primary := openDB(t, path)
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 10; i++ {
		mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("v%d", i))
	}
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	primary = openDB(t, path)
	addr := servePrimary(t, primary)

	f := NewFollower(openDB(t, filepath.Join(dir, "replica.kdb")), addr, fastOpts())
	f.Start(context.Background())
	defer f.Stop()

	waitLSN(t, f.DB(), primary.LSN())
	if dump(t, primary) != dump(t, f.DB()) {
		t.Error("follower diverged after snapshot bootstrap")
	}
	// The stream continues past the snapshot.
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "after")
	waitLSN(t, f.DB(), primary.LSN())
	if dump(t, primary) != dump(t, f.DB()) {
		t.Error("follower diverged after post-snapshot commit")
	}
}

func TestFollowerResyncsAfterPrimaryRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "primary.kdb")
	primary := openDB(t, path)
	srv := &kdb.Server{DB: primary, HeartbeatInterval: 50 * time.Millisecond}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "one")

	f := NewFollower(openDB(t, ""), addr, fastOpts())
	f.Start(context.Background())
	defer f.Stop()
	waitLSN(t, f.DB(), primary.LSN())

	// Kill the primary's server; the follower's stream breaks and it
	// retries with backoff until a primary is listening again.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	time.Sleep(50 * time.Millisecond)

	srv2 := &kdb.Server{DB: primary, HeartbeatInterval: 50 * time.Millisecond}
	l2, err := srv2.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = l2
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	})
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "two")
	waitLSN(t, f.DB(), primary.LSN())
	if dump(t, primary) != dump(t, f.DB()) {
		t.Error("follower diverged after primary restart")
	}
	if st := f.Health(); st.Resyncs == 0 {
		t.Error("expected at least one recorded resync")
	}
}

func TestFollowerDivergenceForcesSnapshot(t *testing.T) {
	// A follower with unrelated local history has the same LSNs as the
	// primary but different records; its first applied record either gaps
	// or the stream offset overshoots — both must end in a snapshot that
	// makes it byte-identical to the primary.
	primary := openDB(t, "")
	addr := servePrimary(t, primary)
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "real")

	rogue := openDB(t, "")
	mustExec(t, rogue, "CREATE TABLE other (id INTEGER PRIMARY KEY)")
	for i := 0; i < 5; i++ {
		mustExec(t, rogue, "INSERT INTO other (id) VALUES (?)", int64(100+i))
	}

	f := NewFollower(rogue, addr, fastOpts())
	f.Start(context.Background())
	defer f.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for dump(t, primary) != dump(t, rogue) {
		if time.Now().After(deadline) {
			t.Fatalf("rogue follower never converged:\n--- primary ---\n%s--- rogue ---\n%s",
				dump(t, primary), dump(t, rogue))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fakeReplica is a Replica with a controllable applied LSN. fail takes the
// whole node down (probes included); queryFail keeps the status probe
// healthy but errors every read, modelling a replica that answers
// heartbeats while its query path is broken.
type fakeReplica struct {
	db        *kdb.DB
	lsn       atomic.Int64
	fail      atomic.Bool
	queryFail atomic.Bool
	queries   atomic.Int64
}

func (f *fakeReplica) Query(q string, args ...any) (*kdb.Rows, error) {
	if f.fail.Load() || f.queryFail.Load() {
		return nil, errors.New("replica down")
	}
	f.queries.Add(1)
	return f.db.Query(q, args...)
}

func (f *fakeReplica) QueryRow(q string, args ...any) ([]any, error) {
	if f.fail.Load() || f.queryFail.Load() {
		return nil, errors.New("replica down")
	}
	f.queries.Add(1)
	return f.db.QueryRow(q, args...)
}

func (f *fakeReplica) Status() (kdb.NodeStatus, error) {
	if f.fail.Load() {
		return kdb.NodeStatus{}, errors.New("replica down")
	}
	return kdb.NodeStatus{Role: "replica", LSN: f.lsn.Load()}, nil
}

func TestRouterReadYourWrites(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")

	// The fake replica serves the primary's data (reads would succeed) but
	// reports a stale LSN, so serving it a read would violate
	// read-your-writes; the router must notice and use the primary.
	rep := &fakeReplica{db: primary}
	rt := NewRouter(primary, rep)
	sess := rt.Session()

	res, err := sess.Exec("INSERT INTO kv (v) VALUES (?)", "mine")
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN == 0 {
		t.Fatal("exec through router reported no LSN")
	}
	if _, err := sess.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if p, r := rt.Stats(); p != 1 || r != 0 {
		t.Errorf("stale replica served a read-your-writes query: primary=%d replica=%d", p, r)
	}

	// Once the replica reports having applied the write, reads move over.
	rep.lsn.Store(res.LSN)
	if _, err := sess.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if p, r := rt.Stats(); p != 1 || r != 1 {
		t.Errorf("fresh replica not used: primary=%d replica=%d", p, r)
	}

	// A session that never wrote reads from the replica immediately.
	other := rt.Session()
	if _, err := other.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if _, r := rt.Stats(); r != 2 {
		t.Errorf("read-only session should use the replica, replica reads = %d", r)
	}
}

func TestRouterFallsBackWhenReplicaFails(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "x")
	rep := &fakeReplica{db: primary}
	rt := NewRouter(primary, rep)

	rows, err := rt.Query("SELECT * FROM kv")
	if err != nil || len(rows.All()) != 1 {
		t.Fatalf("query via replica: %v", err)
	}
	rep.fail.Store(true)
	rows, err = rt.Query("SELECT * FROM kv")
	if err != nil || len(rows.All()) != 1 {
		t.Fatalf("query with failed replica should fall back to primary: %v", err)
	}
	if p, _ := rt.Stats(); p != 1 {
		t.Errorf("primary reads = %d, want 1", p)
	}
}

func TestRouterQueryRowNoRowsFromReplica(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	rep := &fakeReplica{db: primary}
	rt := NewRouter(primary, rep)
	_, err := rt.QueryRow("SELECT * FROM kv WHERE id = ?", int64(99))
	if !errors.Is(err, kdb.ErrNoRows) {
		t.Fatalf("err = %v, want ErrNoRows", err)
	}
	if p, r := rt.Stats(); p != 0 || r != 1 {
		t.Errorf("ErrNoRows should come from the replica without fallback: primary=%d replica=%d", p, r)
	}
}

func TestRouterBatchTracksLSN(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	rep := &fakeReplica{db: primary}
	rt := NewRouter(primary, rep)
	sess := rt.Session()
	err := sess.Batch(func(exec kdb.ExecFunc) error {
		for i := 0; i < 5; i++ {
			if _, err := exec("INSERT INTO kv (v) VALUES (?)", fmt.Sprintf("b%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if p, r := rt.Stats(); p != 1 || r != 0 {
		t.Errorf("stale replica served a post-batch read: primary=%d replica=%d", p, r)
	}
	rep.lsn.Store(primary.LSN())
	if _, err := sess.Query("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if _, r := rt.Stats(); r != 1 {
		t.Errorf("caught-up replica unused after batch: replica reads = %d", r)
	}
}

func TestRouterFailsOverToHealthyReplica(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "x")

	// Both replicas look fresh; one errors on every read. Every query must
	// be served by the healthy replica — never the primary.
	bad := &fakeReplica{db: primary}
	bad.queryFail.Store(true)
	good := &fakeReplica{db: primary}
	rt := NewRouter(primary, bad, good)

	for i := 0; i < 4; i++ {
		rows, err := rt.Query("SELECT * FROM kv")
		if err != nil || len(rows.All()) != 1 {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if p, r := rt.Stats(); p != 0 || r != 4 {
		t.Errorf("failing replica should fail over to its sibling: primary=%d replica=%d", p, r)
	}
	if got := good.queries.Load(); got != 4 {
		t.Errorf("healthy replica served %d reads, want 4", got)
	}

	// A replica that is down entirely (probe fails too) must likewise not
	// push reads to the primary while a healthy sibling exists.
	bad.queryFail.Store(false)
	bad.fail.Store(true)
	if _, err := rt.QueryRow("SELECT v FROM kv WHERE id = ?", int64(1)); err != nil {
		t.Fatal(err)
	}
	if p, r := rt.Stats(); p != 0 || r != 5 {
		t.Errorf("dead replica should be skipped, not trigger primary fallback: primary=%d replica=%d", p, r)
	}
}

// closeCountConn counts Close calls on the wrapped connection.
type closeCountConn struct {
	kdb.Conn
	closes atomic.Int64
}

func (c *closeCountConn) Close() error {
	c.closes.Add(1)
	return c.Conn.Close()
}

func TestSessionCloseLeavesRouterOpen(t *testing.T) {
	db := openDB(t, "")
	mustExec(t, db, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	cc := &closeCountConn{Conn: db}
	rt := NewRouter(cc)

	s1, s2 := rt.Session(), rt.Session()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cc.closes.Load(); got != 0 {
		t.Fatalf("closing a session closed the shared router (%d primary closes)", got)
	}
	if _, err := s2.Query("SELECT * FROM kv"); err != nil {
		t.Fatalf("sibling session broken after another session's Close: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cc.closes.Load(); got != 1 {
		t.Errorf("Router.Close closed the primary %d times, want 1", got)
	}
}

func TestRouterHealth(t *testing.T) {
	primary := openDB(t, "")
	mustExec(t, primary, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, primary, "INSERT INTO kv (v) VALUES (?)", "x")
	rep := &fakeReplica{db: primary}
	rt := NewRouter(primary, rep)
	st := rt.Health()
	if st.Role != "primary" || st.AppliedLSN != primary.LSN() {
		t.Errorf("health = %+v", st)
	}
	if len(st.Replicas) != 1 || st.Replicas[0].LagLSN != primary.LSN() {
		t.Errorf("replica health = %+v", st.Replicas)
	}
}

func TestReadOnlyReplicaServerRejectsWrites(t *testing.T) {
	db := openDB(t, "")
	srv := &kdb.Server{DB: db, Role: "replica", ReadOnly: true}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	r, err := kdb.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Exec("CREATE TABLE x (id INTEGER PRIMARY KEY)"); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Errorf("exec on read-only replica = %v, want read-only rejection", err)
	}
	st, err := r.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" {
		t.Errorf("role = %q, want replica", st.Role)
	}
}
