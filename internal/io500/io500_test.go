package io500

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func runner(seed uint64) *Runner {
	return &Runner{Machine: cluster.FuchsCSC(), Seed: seed}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Tasks: 40},
		{Tasks: 40, EasyBlockPerProc: 1, HardSegments: 1},
		{Tasks: 40, EasyBlockPerProc: 1, HardSegments: 1, EasyFilesPerProc: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunCompleteSchedule(t *testing.T) {
	run, err := runner(1).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) != 12 {
		t.Fatalf("results = %d, want 12", len(run.Results))
	}
	for i, phase := range ScheduleOrder {
		if run.Results[i].Phase != phase {
			t.Errorf("phase %d = %s, want %s", i, run.Results[i].Phase, phase)
		}
		if run.Results[i].Value <= 0 || run.Results[i].Seconds <= 0 {
			t.Errorf("%s: non-positive result %+v", phase, run.Results[i])
		}
	}
	if !run.Finished.After(run.Began) {
		t.Error("Finished should be after Began")
	}
}

func TestBoundaryOrdering(t *testing.T) {
	run, err := runner(2).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	get := func(p string) float64 {
		r, ok := run.Result(p)
		if !ok {
			t.Fatalf("missing %s", p)
		}
		return r.Value
	}
	// The defining shape of the boundary cases: easy beats hard for both
	// bandwidth and metadata, read beats write for easy I/O.
	if get(IorEasyWrite) <= get(IorHardWrite) {
		t.Errorf("ior-easy-write (%.2f) should beat ior-hard-write (%.2f)", get(IorEasyWrite), get(IorHardWrite))
	}
	if get(IorEasyRead) <= get(IorHardRead) {
		t.Errorf("ior-easy-read should beat ior-hard-read")
	}
	if get(IorEasyRead) <= get(IorEasyWrite) {
		t.Errorf("ior-easy-read (%.2f) should beat ior-easy-write (%.2f)", get(IorEasyRead), get(IorEasyWrite))
	}
	if get(MdtestEasyWrite) <= get(MdtestHardWrite) {
		t.Errorf("mdtest-easy-write should beat mdtest-hard-write")
	}
	if get(MdtestEasyStat) <= get(MdtestEasyWrite) {
		t.Errorf("stat should beat create")
	}
	// ior-hard write suffers more than ior-hard read (read-modify-write).
	hardWR := get(IorHardWrite) / get(IorEasyWrite)
	hardRR := get(IorHardRead) / get(IorEasyRead)
	if hardWR >= hardRR {
		t.Errorf("hard/easy write ratio (%.3f) should be below read ratio (%.3f)", hardWR, hardRR)
	}
}

func TestScores(t *testing.T) {
	run, err := runner(3).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	s := run.Score
	if s.BandwidthGiBps <= 0 || s.IOPSk <= 0 || s.Total <= 0 {
		t.Fatalf("scores: %+v", s)
	}
	want := math.Sqrt(s.BandwidthGiBps * s.IOPSk)
	if math.Abs(s.Total-want) > 1e-6*want {
		t.Errorf("total = %v, want sqrt(bw*iops) = %v", s.Total, want)
	}
	// Recompute from phase results.
	again, err := ComputeScores(run.Results)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again.Total-s.Total) > 1e-9 {
		t.Error("ComputeScores disagrees with run score")
	}
}

func TestComputeScoresMissingPhase(t *testing.T) {
	run, _ := runner(4).Run(Default())
	if _, err := ComputeScores(run.Results[:5]); err == nil {
		t.Error("want error for missing phases")
	}
	// Zero-valued phase breaks the geometric mean.
	broken := append([]PhaseResult(nil), run.Results...)
	broken[0].Value = 0
	if _, err := ComputeScores(broken); err == nil {
		t.Error("want error for zero phase value")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := runner(9).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner(9).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("same-seed scores differ: %+v vs %+v", a.Score, b.Score)
	}
}

func TestBeforePhaseInjection(t *testing.T) {
	base, err := runner(5).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	r := runner(5)
	r.BeforePhase = func(phase string, m *cluster.Machine) {
		m.ClearFaults()
		if phase == IorEasyRead {
			m.SetNodeFactor(1, 1, 0.45) // broken node during easy read
		}
	}
	faulty, err := r.Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.Result(IorEasyRead)
	f, _ := faulty.Result(IorEasyRead)
	if ratio := f.Value / b.Value; ratio > 0.65 {
		t.Errorf("broken node should depress ior-easy-read, ratio = %.2f", ratio)
	}
	// Hard read should be essentially unaffected (fault cleared).
	bh, _ := base.Result(IorHardRead)
	fh, _ := faulty.Result(IorHardRead)
	if ratio := fh.Value / bh.Value; ratio < 0.8 {
		t.Errorf("ior-hard-read should be unaffected, ratio = %.2f", ratio)
	}
}

func TestRunErrors(t *testing.T) {
	nr := &Runner{}
	if _, err := nr.Run(Default()); err == nil {
		t.Error("want error for missing machine")
	}
	r := runner(1)
	c := Default()
	c.Tasks = 0
	if _, err := r.Run(c); err == nil {
		t.Error("want error for invalid config")
	}
	c = Default()
	c.Tasks = 1000000
	c.TasksPerNode = 20
	if _, err := r.Run(c); err == nil {
		t.Error("want error for oversubscription")
	}
}

func TestOutputParseRoundTrip(t *testing.T) {
	run, err := runner(6).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOutput(&buf, run); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"IO500 version io500-sc22",
		"[RESULT]",
		"ior-easy-write",
		"mdtest-hard-delete",
		"GiB/s : time",
		"kIOPS : time",
		"[SCORE ] Bandwidth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	p, err := ParseOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != Version || p.Tasks != 40 || p.TPN != 20 {
		t.Errorf("header: %+v", p)
	}
	if len(p.Results) != 12 {
		t.Fatalf("parsed %d results", len(p.Results))
	}
	if !p.HasScore {
		t.Fatal("score not parsed")
	}
	if math.Abs(p.Score.Total-run.Score.Total) > 1e-4 {
		t.Errorf("score total parsed %v, want %v", p.Score.Total, run.Score.Total)
	}
	pr, ok := p.Result(IorEasyWrite)
	rr, _ := run.Result(IorEasyWrite)
	if !ok || math.Abs(pr.Value-rr.Value) > 1e-4 {
		t.Errorf("ior-easy-write parsed %v, want %v", pr.Value, rr.Value)
	}
	if p.Began.IsZero() || !p.Finished.After(p.Began) {
		t.Error("timestamps not parsed")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := ParseOutput(strings.NewReader("nothing here\n")); err == nil {
		t.Error("garbage should not parse")
	}
}

func TestReuseIOR(t *testing.T) {
	c := Default()
	easy, err := c.ReuseIOR(IorEasyWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !easy.FilePerProc || !easy.WriteFile || easy.ReadFile {
		t.Errorf("easy write config: %+v", easy)
	}
	hard, err := c.ReuseIOR(IorHardRead)
	if err != nil {
		t.Fatal(err)
	}
	if hard.FilePerProc || hard.TransferSize != HardTransfer || !hard.ReadFile || hard.WriteFile {
		t.Errorf("hard read config: %+v", hard)
	}
	if _, err := c.ReuseIOR(Find); err == nil {
		t.Error("find is not an ior phase")
	}
}

func TestMdtestConfig(t *testing.T) {
	c := Default()
	easy := c.MdtestConfig(false)
	if !easy.UniqueDir || easy.WriteBytes != 0 || easy.NumFiles != c.EasyFilesPerProc {
		t.Errorf("easy mdtest: %+v", easy)
	}
	hard := c.MdtestConfig(true)
	if hard.UniqueDir || hard.WriteBytes != 3901 || hard.NumFiles != c.HardFilesPerProc {
		t.Errorf("hard mdtest: %+v", hard)
	}
}

// Property: scaling any single phase up never lowers the total score
// (geometric-mean monotonicity).
func TestScoreMonotonicityProperty(t *testing.T) {
	base, err := runner(8).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := ComputeScores(base.Results)
	if err != nil {
		t.Fatal(err)
	}
	f := func(which uint8, boost uint8) bool {
		scaled := append([]PhaseResult(nil), base.Results...)
		i := int(which) % len(scaled)
		scaled[i].Value *= 1 + float64(boost%100)/100
		s1, err := ComputeScores(scaled)
		if err != nil {
			return false
		}
		return s1.Total >= s0.Total-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
