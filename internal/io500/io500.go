// Package io500 reimplements the IO500 benchmark as a simulator. IO500
// combines IOR and mdtest "easy" and "hard" boundary test cases plus a
// parallel find into bandwidth, metadata, and total scores (geometric
// means). The paper integrates IO500 as a second knowledge generator and
// bases its bounding-box anomaly detection (after Liem et al.) on the four
// ior boundary cases; this package provides those runs, the scoring, and
// an output writer/parser in the IO500 result-summary format.
package io500

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ior"
	"repro/internal/mdtest"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
)

// Version is the emitted IO500 release string.
const Version = "io500-sc22"

// Phase names in schedule order. The "timestamp" phase of the real harness
// is a no-op and is not scored.
const (
	IorEasyWrite     = "ior-easy-write"
	MdtestEasyWrite  = "mdtest-easy-write"
	IorHardWrite     = "ior-hard-write"
	MdtestHardWrite  = "mdtest-hard-write"
	Find             = "find"
	IorEasyRead      = "ior-easy-read"
	MdtestEasyStat   = "mdtest-easy-stat"
	IorHardRead      = "ior-hard-read"
	MdtestHardStat   = "mdtest-hard-stat"
	MdtestEasyDelete = "mdtest-easy-delete"
	MdtestHardRead   = "mdtest-hard-read"
	MdtestHardDelete = "mdtest-hard-delete"
)

// BandwidthPhases are the four boundary cases scored in GiB/s; they are
// also the axes of the Liem et al. bounding box used in the paper's Fig. 6.
var BandwidthPhases = []string{IorEasyWrite, IorHardWrite, IorEasyRead, IorHardRead}

// MetadataPhases are the eight cases scored in kIOPS.
var MetadataPhases = []string{
	MdtestEasyWrite, MdtestHardWrite, Find, MdtestEasyStat,
	MdtestHardStat, MdtestEasyDelete, MdtestHardRead, MdtestHardDelete,
}

// ScheduleOrder is the execution order of all scored phases.
var ScheduleOrder = []string{
	IorEasyWrite, MdtestEasyWrite, IorHardWrite, MdtestHardWrite, Find,
	IorEasyRead, MdtestEasyStat, IorHardRead, MdtestHardStat,
	MdtestEasyDelete, MdtestHardRead, MdtestHardDelete,
}

// Config describes one IO500 execution.
type Config struct {
	Tasks        int
	TasksPerNode int
	// EasyBlockPerProc is the per-process data volume of ior-easy.
	EasyBlockPerProc int64
	// HardSegments is the number of 47008-byte segments per process in
	// ior-hard.
	HardSegments int
	// EasyFilesPerProc / HardFilesPerProc are the mdtest item counts.
	EasyFilesPerProc int
	HardFilesPerProc int
	ResultDir        string
}

// HardTransfer is ior-hard's fixed, deliberately awkward transfer size.
const HardTransfer = 47008

// Default returns an IO500 configuration sized like the paper's 40-core
// FUCHS-CSC run.
func Default() Config {
	return Config{
		Tasks:            40,
		TasksPerNode:     20,
		EasyBlockPerProc: 512 * units.MiB,
		HardSegments:     6000,
		EasyFilesPerProc: 10000,
		HardFilesPerProc: 2000,
		ResultDir:        "/scratch/io500",
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tasks <= 0 {
		return fmt.Errorf("io500: tasks must be positive")
	}
	if c.EasyBlockPerProc <= 0 || c.HardSegments <= 0 {
		return fmt.Errorf("io500: ior phase sizes must be positive")
	}
	if c.EasyFilesPerProc <= 0 || c.HardFilesPerProc <= 0 {
		return fmt.Errorf("io500: mdtest item counts must be positive")
	}
	return nil
}

// PhaseResult is one scored phase.
type PhaseResult struct {
	Phase string
	// Value is GiB/s for bandwidth phases, kIOPS for metadata phases.
	Value   float64
	Seconds float64
}

// Scores holds the three IO500 scores.
type Scores struct {
	BandwidthGiBps float64
	IOPSk          float64
	Total          float64
}

// Run is one complete IO500 execution.
type Run struct {
	Config   Config
	Began    time.Time
	Finished time.Time
	Results  []PhaseResult
	Score    Scores
}

// Result returns the named phase result, or false when absent.
func (r *Run) Result(phase string) (PhaseResult, bool) {
	for _, p := range r.Results {
		if p.Phase == phase {
			return p, true
		}
	}
	return PhaseResult{}, false
}

// Runner executes IO500 on a modelled machine.
type Runner struct {
	Machine *cluster.Machine
	Seed    uint64
	Clock   time.Time
	// BeforePhase, when non-nil, runs before each scored phase;
	// experiments use it for fault injection.
	BeforePhase func(phase string, m *cluster.Machine)
}

var referenceClock = time.Date(2022, 7, 8, 9, 0, 0, 0, time.UTC)

// Run executes the full IO500 schedule and computes the scores.
func (r *Runner) Run(cfg Config) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.Machine == nil {
		return nil, fmt.Errorf("io500: runner has no machine")
	}
	clock := r.Clock
	if clock.IsZero() {
		clock = referenceClock
	}
	src := rng.New(r.Seed)
	run := &Run{Config: cfg, Began: clock}
	elapsed := 0.0

	iorPhase := func(phase string, op cluster.Op, hard bool) error {
		if r.BeforePhase != nil {
			r.BeforePhase(phase, r.Machine)
		}
		req := cluster.IORequest{
			Op:           op,
			API:          cluster.POSIX,
			Tasks:        cfg.Tasks,
			TasksPerNode: cfg.TasksPerNode,
			ReorderTasks: true, // the harness defeats caching by design
		}
		if hard {
			req.TransferSize = HardTransfer
			req.BlockSize = HardTransfer
			req.Segments = cfg.HardSegments
			req.FilePerProc = false
		} else {
			req.TransferSize = 2 * units.MiB
			req.BlockSize = cfg.EasyBlockPerProc
			req.Segments = 1
			req.FilePerProc = true
		}
		res, err := r.Machine.Simulate(req, src.Fork())
		if err != nil {
			return fmt.Errorf("io500: %s: %w", phase, err)
		}
		run.Results = append(run.Results, PhaseResult{
			Phase:   phase,
			Value:   res.BandwidthMiBps / 1024,
			Seconds: res.TotalSec,
		})
		elapsed += res.TotalSec
		return nil
	}

	mdPhase := func(phase string, kind cluster.MetaKind, hard bool) error {
		if r.BeforePhase != nil {
			r.BeforePhase(phase, r.Machine)
		}
		req := cluster.MetaRequest{
			Kind:         kind,
			Tasks:        cfg.Tasks,
			ItemsPerTask: cfg.EasyFilesPerProc,
			SharedDir:    false,
		}
		if hard {
			req.ItemsPerTask = cfg.HardFilesPerProc
			req.SharedDir = true
			req.WriteBytes = 3901
		}
		res, err := r.Machine.SimulateMeta(req, src.Fork())
		if err != nil {
			return fmt.Errorf("io500: %s: %w", phase, err)
		}
		run.Results = append(run.Results, PhaseResult{
			Phase:   phase,
			Value:   res.OpsPerSec / 1000,
			Seconds: res.TotalSec,
		})
		elapsed += res.TotalSec
		return nil
	}

	findPhase := func() error {
		if r.BeforePhase != nil {
			r.BeforePhase(Find, r.Machine)
		}
		items := int64(cfg.Tasks) * int64(cfg.EasyFilesPerProc+cfg.HardFilesPerProc)
		// A parallel namespace walk batches stats, scanning faster than
		// individual stat RPCs.
		rate := r.Machine.FS.MetaRate("stat") * 3.2
		rate = src.Fork().Perturb(rate, 0.08)
		sec := float64(items) / rate
		run.Results = append(run.Results, PhaseResult{Phase: Find, Value: rate / 1000, Seconds: sec})
		elapsed += sec
		return nil
	}

	steps := []func() error{
		func() error { return iorPhase(IorEasyWrite, cluster.Write, false) },
		func() error { return mdPhase(MdtestEasyWrite, cluster.MetaCreate, false) },
		func() error { return iorPhase(IorHardWrite, cluster.Write, true) },
		func() error { return mdPhase(MdtestHardWrite, cluster.MetaCreate, true) },
		findPhase,
		func() error { return iorPhase(IorEasyRead, cluster.Read, false) },
		func() error { return mdPhase(MdtestEasyStat, cluster.MetaStat, false) },
		func() error { return iorPhase(IorHardRead, cluster.Read, true) },
		func() error { return mdPhase(MdtestHardStat, cluster.MetaStat, true) },
		func() error { return mdPhase(MdtestEasyDelete, cluster.MetaRemove, false) },
		func() error { return mdPhase(MdtestHardRead, cluster.MetaRead, true) },
		func() error { return mdPhase(MdtestHardDelete, cluster.MetaRemove, true) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	score, err := ComputeScores(run.Results)
	if err != nil {
		return nil, err
	}
	run.Score = score
	run.Finished = run.Began.Add(time.Duration(elapsed * float64(time.Second)))
	return run, nil
}

// ComputeScores derives the IO500 scores from phase results: geometric mean
// of the bandwidth phases (GiB/s), geometric mean of the metadata phases
// (kIOPS), and total = sqrt(bw × iops).
func ComputeScores(results []PhaseResult) (Scores, error) {
	byName := map[string]float64{}
	for _, p := range results {
		byName[p.Phase] = p.Value
	}
	var bws, mds []float64
	for _, p := range BandwidthPhases {
		v, ok := byName[p]
		if !ok {
			return Scores{}, fmt.Errorf("io500: missing phase %s", p)
		}
		bws = append(bws, v)
	}
	for _, p := range MetadataPhases {
		v, ok := byName[p]
		if !ok {
			return Scores{}, fmt.Errorf("io500: missing phase %s", p)
		}
		mds = append(mds, v)
	}
	bw, err := stats.GeoMean(bws)
	if err != nil {
		return Scores{}, fmt.Errorf("io500: bandwidth score: %w", err)
	}
	md, err := stats.GeoMean(mds)
	if err != nil {
		return Scores{}, fmt.Errorf("io500: metadata score: %w", err)
	}
	total := sqrt(bw * md)
	return Scores{BandwidthGiBps: bw, IOPSk: md, Total: total}, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations; avoids importing math for one call and stays
	// precise to double rounding for the score's two printed decimals.
	z := x
	for i := 0; i < 64; i++ {
		nz := (z + x/z) / 2
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

const stampLayout = "2006-01-02 15:04:05"

// WriteOutput renders the run in IO500 result-summary form.
func WriteOutput(w io.Writer, run *Run) error {
	var b strings.Builder
	fmt.Fprintf(&b, "IO500 version %s\n", Version)
	fmt.Fprintf(&b, "[System] tasks %d tasks-per-node %d result-dir %s\n",
		run.Config.Tasks, run.Config.TasksPerNode, run.Config.ResultDir)
	fmt.Fprintf(&b, "[Began] %s\n", run.Began.Format(stampLayout))
	for _, p := range run.Results {
		unit := "kIOPS"
		if isBandwidth(p.Phase) {
			unit = "GiB/s"
		}
		fmt.Fprintf(&b, "[RESULT] %20s %15.6f %s : time %.3f seconds\n", p.Phase, p.Value, unit, p.Seconds)
	}
	fmt.Fprintf(&b, "[SCORE ] Bandwidth %f GiB/s : IOPS %f kiops : TOTAL %f\n",
		run.Score.BandwidthGiBps, run.Score.IOPSk, run.Score.Total)
	fmt.Fprintf(&b, "[Finished] %s\n", run.Finished.Format(stampLayout))
	_, err := io.WriteString(w, b.String())
	return err
}

func isBandwidth(phase string) bool {
	for _, p := range BandwidthPhases {
		if p == phase {
			return true
		}
	}
	return false
}

// ParsedRun is IO500 output decoded back into structured data.
type ParsedRun struct {
	Version  string
	Tasks    int
	TPN      int
	Began    time.Time
	Finished time.Time
	Results  []PhaseResult
	Score    Scores
	HasScore bool
}

// Result returns the named parsed phase, or false when absent.
func (p *ParsedRun) Result(phase string) (PhaseResult, bool) {
	for _, r := range p.Results {
		if r.Phase == phase {
			return r, true
		}
	}
	return PhaseResult{}, false
}

// ParseOutput decodes IO500 result-summary text.
func ParseOutput(r io.Reader) (*ParsedRun, error) {
	sc := bufio.NewScanner(r)
	p := &ParsedRun{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "IO500 version"):
			p.Version = strings.TrimSpace(strings.TrimPrefix(line, "IO500 version"))
		case strings.HasPrefix(line, "[System]"):
			f := strings.Fields(line)
			for i := 0; i+1 < len(f); i++ {
				switch f[i] {
				case "tasks":
					p.Tasks, _ = strconv.Atoi(f[i+1])
				case "tasks-per-node":
					p.TPN, _ = strconv.Atoi(f[i+1])
				}
			}
		case strings.HasPrefix(line, "[Began]"):
			p.Began = parseStamp(strings.TrimSpace(strings.TrimPrefix(line, "[Began]")))
		case strings.HasPrefix(line, "[Finished]"):
			p.Finished = parseStamp(strings.TrimSpace(strings.TrimPrefix(line, "[Finished]")))
		case strings.HasPrefix(line, "[RESULT]"):
			f := strings.Fields(line)
			// [RESULT] <phase> <value> <unit> : time <sec> seconds
			if len(f) < 8 {
				continue
			}
			v, err1 := strconv.ParseFloat(f[2], 64)
			sec, err2 := strconv.ParseFloat(f[6], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			p.Results = append(p.Results, PhaseResult{Phase: f[1], Value: v, Seconds: sec})
		case strings.HasPrefix(line, "[SCORE"):
			f := strings.Fields(line)
			for i := 0; i+1 < len(f); i++ {
				switch f[i] {
				case "Bandwidth":
					p.Score.BandwidthGiBps, _ = strconv.ParseFloat(f[i+1], 64)
				case "IOPS":
					p.Score.IOPSk, _ = strconv.ParseFloat(f[i+1], 64)
				case "TOTAL":
					p.Score.Total, _ = strconv.ParseFloat(f[i+1], 64)
				}
			}
			p.HasScore = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Version == "" && len(p.Results) == 0 {
		return nil, fmt.Errorf("io500: input does not look like IO500 output")
	}
	return p, nil
}

func parseStamp(s string) time.Time {
	t, err := time.Parse(stampLayout, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

// ReuseIOR builds an ior.Config equivalent to one of the IO500 ior phases,
// letting the workload generator emit stand-alone reproductions of a
// boundary case.
func (c Config) ReuseIOR(phase string) (ior.Config, error) {
	cfg := ior.Default()
	cfg.API = cluster.POSIX
	cfg.NumTasks = c.Tasks
	cfg.TasksPerNode = c.TasksPerNode
	cfg.ReorderTasks = true
	switch phase {
	case IorEasyWrite, IorEasyRead:
		cfg.TransferSize = 2 * units.MiB
		cfg.BlockSize = c.EasyBlockPerProc
		cfg.Segments = 1
		cfg.FilePerProc = true
	case IorHardWrite, IorHardRead:
		cfg.TransferSize = HardTransfer
		cfg.BlockSize = HardTransfer
		cfg.Segments = c.HardSegments
	default:
		return cfg, fmt.Errorf("io500: %s is not an ior phase", phase)
	}
	cfg.WriteFile = phase == IorEasyWrite || phase == IorHardWrite
	cfg.ReadFile = !cfg.WriteFile
	cfg.TestFile = c.ResultDir + "/" + phase
	return cfg, nil
}

// MdtestConfig builds an mdtest.Config equivalent to the easy or hard
// namespace of an IO500 run.
func (c Config) MdtestConfig(hard bool) mdtest.Config {
	m := mdtest.Default()
	m.Tasks = c.Tasks
	m.TasksPerNode = c.TasksPerNode
	m.Dir = c.ResultDir + "/mdtest"
	if hard {
		m.NumFiles = c.HardFilesPerProc
		m.UniqueDir = false
		m.WriteBytes = 3901
	} else {
		m.NumFiles = c.EasyFilesPerProc
		m.UniqueDir = true
	}
	return m
}
