package dxt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/darshan"
	"repro/internal/ior"
	"repro/internal/units"
)

func seg(rank int32, op darshan.OpKind, length int64, start, end float64) darshan.Segment {
	return darshan.Segment{Module: darshan.ModulePOSIX, Rank: rank, Op: op, Length: length, StartSec: start, EndSec: end}
}

func TestAnalyzeBasic(t *testing.T) {
	segs := []darshan.Segment{
		seg(0, darshan.OpWrite, 2*units.MiB, 0.0, 0.1),
		seg(0, darshan.OpWrite, 2*units.MiB, 0.1, 0.2),
		seg(1, darshan.OpWrite, 2*units.MiB, 0.0, 0.1),
		seg(1, darshan.OpRead, 2*units.MiB, 0.3, 0.35),
	}
	a, err := Analyze(segs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ranks != 2 || a.Ops != 4 || a.TotalBytes != 8*units.MiB {
		t.Errorf("analysis = %+v", a)
	}
	if a.StartSec != 0 || a.EndSec != 0.35 {
		t.Errorf("span = [%v, %v]", a.StartSec, a.EndSec)
	}
	wr := a.ByOp[darshan.OpWrite]
	if wr.Ops != 3 || wr.Bytes != 6*units.MiB {
		t.Errorf("write stats = %+v", wr)
	}
	if math.Abs(wr.MeanLatency-0.1) > 1e-9 || wr.MaxLatency != 0.1 {
		t.Errorf("write latency = %+v", wr)
	}
	rd := a.ByOp[darshan.OpRead]
	if rd.Ops != 1 || math.Abs(rd.MeanLatency-0.05) > 1e-9 {
		t.Errorf("read stats = %+v", rd)
	}
	if a.SmallIOFraction != 0 {
		t.Errorf("small fraction = %v", a.SmallIOFraction)
	}
	// Rank 0 busy 0.2s, rank 1 busy 0.15s: imbalance = 0.2/0.175.
	if math.Abs(a.Imbalance-0.2/0.175) > 1e-9 {
		t.Errorf("imbalance = %v", a.Imbalance)
	}
	if len(a.Stragglers) != 0 {
		t.Errorf("stragglers = %v", a.Stragglers)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 10); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Analyze([]darshan.Segment{seg(0, darshan.OpWrite, 1, 1.0, 0.5)}, 10); err == nil {
		t.Error("negative duration should fail")
	}
	if _, err := Analyze([]darshan.Segment{seg(0, darshan.OpWrite, -1, 0, 1)}, 10); err == nil {
		t.Error("negative length should fail")
	}
}

func TestTimelineConservesBytes(t *testing.T) {
	segs := []darshan.Segment{
		seg(0, darshan.OpWrite, 10*units.MiB, 0.0, 1.0),
		seg(1, darshan.OpWrite, 10*units.MiB, 0.5, 1.5),
	}
	a, err := Analyze(segs, 15)
	if err != nil {
		t.Fatal(err)
	}
	width := (a.EndSec - a.StartSec) / float64(len(a.Timeline))
	var total float64
	for _, b := range a.Timeline {
		total += b.MiBps * width
	}
	if math.Abs(total-20) > 0.01 {
		t.Errorf("timeline accounts for %.2f MiB, want 20", total)
	}
}

func TestSmallIOInsight(t *testing.T) {
	var segs []darshan.Segment
	for i := 0; i < 10; i++ {
		segs = append(segs, seg(0, darshan.OpWrite, 4096, float64(i)*0.01, float64(i)*0.01+0.005))
	}
	a, err := Analyze(segs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.SmallIOFraction != 1 {
		t.Errorf("small fraction = %v", a.SmallIOFraction)
	}
	insights := a.Insights()
	found := false
	for _, in := range insights {
		if strings.Contains(in.Suggestion, "collective buffering") {
			found = true
		}
	}
	if !found {
		t.Errorf("small-I/O insight missing: %+v", insights)
	}
}

func TestStragglerInsight(t *testing.T) {
	segs := []darshan.Segment{
		seg(0, darshan.OpWrite, units.MiB, 0, 0.1),
		seg(1, darshan.OpWrite, units.MiB, 0, 0.1),
		seg(2, darshan.OpWrite, units.MiB, 0, 0.1),
		seg(3, darshan.OpWrite, units.MiB, 0, 1.0), // straggler
	}
	a, err := Analyze(segs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stragglers) != 1 || a.Stragglers[0] != 3 {
		t.Errorf("stragglers = %v", a.Stragglers)
	}
	found := false
	for _, in := range a.Insights() {
		if strings.Contains(in.Observation, "imbalance") {
			found = true
		}
	}
	if !found {
		t.Error("imbalance insight missing")
	}
}

func TestWriteLatencyInsight(t *testing.T) {
	segs := []darshan.Segment{
		seg(0, darshan.OpWrite, units.MiB, 0, 0.4),
		seg(0, darshan.OpRead, units.MiB, 0.5, 0.55),
	}
	a, err := Analyze(segs, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range a.Insights() {
		if strings.Contains(in.Observation, "write latency") {
			found = true
		}
	}
	if !found {
		t.Errorf("write-latency insight missing: %+v", a.Insights())
	}
}

func TestHealthyTraceNoInsights(t *testing.T) {
	var segs []darshan.Segment
	for r := int32(0); r < 4; r++ {
		for i := 0; i < 8; i++ {
			start := float64(i) * 0.1
			segs = append(segs, seg(r, darshan.OpWrite, 2*units.MiB, start, start+0.09))
		}
	}
	a, err := Analyze(segs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Insights(); len(got) != 0 {
		t.Errorf("healthy trace produced insights: %+v", got)
	}
	if !strings.Contains(a.Report(), "looks healthy") {
		t.Error("report should say healthy")
	}
}

func TestAnalyzeRealDarshanLog(t *testing.T) {
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 2 -o /scratch/t -k")
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	run, err := (&ior.Runner{Machine: cluster.FuchsCSC(), Seed: 5}).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := darshan.FromIORRun(run, 1)
	a, err := Analyze(l.DXT, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ranks != 4 { // DXT traces the first 4 ranks
		t.Errorf("ranks = %d", a.Ranks)
	}
	if a.TotalBytes <= 0 || a.Ops <= 0 {
		t.Errorf("analysis = %+v", a)
	}
	rep := a.Report()
	if !strings.Contains(rep, "DXT analysis") || !strings.Contains(rep, "write") {
		t.Errorf("report = %q", rep)
	}
}

func TestZeroDurationSegments(t *testing.T) {
	segs := []darshan.Segment{
		seg(0, darshan.OpWrite, units.MiB, 0.5, 0.5),
		seg(0, darshan.OpWrite, units.MiB, 0.5, 0.5),
	}
	a, err := Analyze(segs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != 2 {
		t.Errorf("ops = %d", a.Ops)
	}
}
