// Package dxt analyzes Darshan extended-tracing (DXT) segments the way
// DXT Explorer does in the paper's related-work analysis (§II-A-2):
// per-operation statistics, a bandwidth timeline, rank-imbalance and
// straggler detection, small-I/O and overlap measures, and the
// human-readable tuning insights that "narrow the gap between trace
// analysis and actually applying tuning parameters".
package dxt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/darshan"
	"repro/internal/units"
)

// OpStats summarizes one operation kind across all traced segments.
type OpStats struct {
	Ops         int
	Bytes       int64
	MeanSize    float64
	MeanLatency float64
	MaxLatency  float64
}

// Bin is one slot of the bandwidth timeline.
type Bin struct {
	StartSec float64
	EndSec   float64
	// MiBps is the aggregate traced bandwidth inside the bin.
	MiBps float64
	Ops   int
}

// Analysis is the full decomposition of a DXT trace.
type Analysis struct {
	Ranks      int
	Ops        int
	TotalBytes int64
	// StartSec/EndSec span the traced activity.
	StartSec float64
	EndSec   float64
	ByOp     map[darshan.OpKind]OpStats
	// BusySec maps rank -> summed segment time.
	BusySec map[int32]float64
	// Imbalance is max rank busy time over mean busy time (1 = balanced).
	Imbalance float64
	// Stragglers lists ranks whose busy time exceeds 1.5× the mean.
	Stragglers []int32
	// SmallIOFraction is the share of operations below SmallIOThreshold.
	SmallIOFraction float64
	Timeline        []Bin
}

// SmallIOThreshold classifies transfers as "small" (the classic tuning
// target) below 256 KiB.
const SmallIOThreshold = 256 * units.KiB

// Analyze decomposes a DXT segment list into an Analysis with the given
// number of timeline bins.
func Analyze(segs []darshan.Segment, bins int) (*Analysis, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("dxt: no segments to analyze")
	}
	if bins <= 0 {
		bins = 20
	}
	a := &Analysis{
		ByOp:     map[darshan.OpKind]OpStats{},
		BusySec:  map[int32]float64{},
		StartSec: math.Inf(1),
		EndSec:   math.Inf(-1),
	}
	ranks := map[int32]bool{}
	small := 0
	for _, s := range segs {
		if s.EndSec < s.StartSec {
			return nil, fmt.Errorf("dxt: segment with negative duration (rank %d)", s.Rank)
		}
		if s.Length < 0 {
			return nil, fmt.Errorf("dxt: segment with negative length (rank %d)", s.Rank)
		}
		ranks[s.Rank] = true
		a.Ops++
		a.TotalBytes += s.Length
		a.StartSec = math.Min(a.StartSec, s.StartSec)
		a.EndSec = math.Max(a.EndSec, s.EndSec)
		dur := s.EndSec - s.StartSec
		a.BusySec[s.Rank] += dur
		st := a.ByOp[s.Op]
		st.Ops++
		st.Bytes += s.Length
		st.MeanSize += float64(s.Length)
		st.MeanLatency += dur
		if dur > st.MaxLatency {
			st.MaxLatency = dur
		}
		a.ByOp[s.Op] = st
		if s.Length < SmallIOThreshold {
			small++
		}
	}
	for op, st := range a.ByOp {
		st.MeanSize /= float64(st.Ops)
		st.MeanLatency /= float64(st.Ops)
		a.ByOp[op] = st
	}
	a.Ranks = len(ranks)
	a.SmallIOFraction = float64(small) / float64(a.Ops)

	// Imbalance and stragglers.
	var sum, maxBusy float64
	for _, busy := range a.BusySec {
		sum += busy
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	mean := sum / float64(len(a.BusySec))
	if mean > 0 {
		a.Imbalance = maxBusy / mean
		for rank, busy := range a.BusySec {
			if busy > 1.5*mean {
				a.Stragglers = append(a.Stragglers, rank)
			}
		}
		sort.Slice(a.Stragglers, func(i, j int) bool { return a.Stragglers[i] < a.Stragglers[j] })
	}

	// Timeline: distribute each segment's bytes across the bins it spans.
	span := a.EndSec - a.StartSec
	if span <= 0 {
		span = 1e-9
	}
	a.Timeline = make([]Bin, bins)
	width := span / float64(bins)
	for i := range a.Timeline {
		a.Timeline[i].StartSec = a.StartSec + float64(i)*width
		a.Timeline[i].EndSec = a.Timeline[i].StartSec + width
	}
	for _, s := range segs {
		dur := s.EndSec - s.StartSec
		lo := int((s.StartSec - a.StartSec) / width)
		hi := int((s.EndSec - a.StartSec) / width)
		if hi >= bins {
			hi = bins - 1
		}
		if lo < 0 {
			lo = 0
		}
		counted := false
		for bi := lo; bi <= hi; bi++ {
			b := &a.Timeline[bi]
			overlap := math.Min(s.EndSec, b.EndSec) - math.Max(s.StartSec, b.StartSec)
			if overlap <= 0 && dur > 0 {
				continue
			}
			frac := 1.0
			if dur > 0 {
				frac = overlap / dur
			}
			bytes := float64(s.Length) * frac
			b.MiBps += bytes / (1 << 20) / width
			if !counted {
				b.Ops++
				counted = true
			}
		}
	}
	return a, nil
}

// Insight is one actionable observation with a suggested response.
type Insight struct {
	Observation string
	Suggestion  string
}

// Insights derives DXT-Explorer-style tuning hints from the analysis.
func (a *Analysis) Insights() []Insight {
	var out []Insight
	if a.SmallIOFraction > 0.5 {
		out = append(out, Insight{
			Observation: fmt.Sprintf("%.0f%% of traced operations are below %s", a.SmallIOFraction*100, units.HumanBytes(SmallIOThreshold)),
			Suggestion:  "increase the transfer size or enable collective buffering to aggregate requests",
		})
	}
	if a.Imbalance > 1.5 {
		out = append(out, Insight{
			Observation: fmt.Sprintf("rank imbalance %.1f× (stragglers: %v)", a.Imbalance, a.Stragglers),
			Suggestion:  "rebalance the data decomposition or check the stragglers' nodes for degradation",
		})
	}
	if wr, ok := a.ByOp[darshan.OpWrite]; ok {
		if rd, ok2 := a.ByOp[darshan.OpRead]; ok2 && rd.MeanLatency > 0 && wr.MeanLatency > 3*rd.MeanLatency {
			out = append(out, Insight{
				Observation: fmt.Sprintf("write latency (%.1f ms) far exceeds read latency (%.1f ms)", wr.MeanLatency*1000, rd.MeanLatency*1000),
				Suggestion:  "inspect write-path contention: striping width, fsync frequency, competing jobs",
			})
		}
	}
	// Bursty timeline: peak bin far above the median bin.
	var rates []float64
	for _, b := range a.Timeline {
		if b.Ops > 0 {
			rates = append(rates, b.MiBps)
		}
	}
	if len(rates) >= 4 {
		sorted := append([]float64(nil), rates...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		peak := sorted[len(sorted)-1]
		if median > 0 && peak > 4*median {
			out = append(out, Insight{
				Observation: fmt.Sprintf("bursty I/O: peak bin %.0f MiB/s vs median %.0f MiB/s", peak, median),
				Suggestion:  "consider asynchronous I/O or burst buffering to smooth the demand",
			})
		}
	}
	return out
}

// Report renders the analysis as text.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DXT analysis: %d ops from %d rank(s), %s over %.3f s\n",
		a.Ops, a.Ranks, units.HumanBytes(a.TotalBytes), a.EndSec-a.StartSec)
	for _, op := range []darshan.OpKind{darshan.OpWrite, darshan.OpRead} {
		st, ok := a.ByOp[op]
		if !ok {
			continue
		}
		name := "write"
		if op == darshan.OpRead {
			name = "read"
		}
		fmt.Fprintf(&b, "  %-5s %6d ops, %s, mean size %s, mean latency %.2f ms (max %.2f ms)\n",
			name, st.Ops, units.HumanBytes(st.Bytes), units.HumanBytes(int64(st.MeanSize)),
			st.MeanLatency*1000, st.MaxLatency*1000)
	}
	fmt.Fprintf(&b, "  imbalance %.2fx, small-I/O fraction %.0f%%\n", a.Imbalance, a.SmallIOFraction*100)
	insights := a.Insights()
	if len(insights) == 0 {
		b.WriteString("  no tuning insights — access pattern looks healthy\n")
	}
	for _, in := range insights {
		fmt.Fprintf(&b, "  insight: %s -> %s\n", in.Observation, in.Suggestion)
	}
	return b.String()
}
