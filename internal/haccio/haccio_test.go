package haccio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func runner(seed uint64) *Runner {
	return &Runner{Machine: cluster.FuchsCSC(), Seed: seed}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
	bad := []Config{
		{},
		{ParticlesPerRank: 1, Tasks: 0, API: cluster.POSIX, Mode: SingleSharedFile},
		{ParticlesPerRank: 1, Tasks: 1, API: cluster.HDF5, Mode: SingleSharedFile},
		{ParticlesPerRank: 1, Tasks: 1, API: cluster.POSIX, Mode: "weird"},
		{ParticlesPerRank: 1, Tasks: 1, API: cluster.POSIX, Mode: FilePerGroup, GroupSize: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunBothPhases(t *testing.T) {
	run, err := runner(1).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(40) * 2_000_000 * BytesPerParticle
	if run.Checkpoint.Bytes != wantBytes || run.Restart.Bytes != wantBytes {
		t.Errorf("bytes = %d/%d, want %d", run.Checkpoint.Bytes, run.Restart.Bytes, wantBytes)
	}
	if run.Checkpoint.BandwidthMiBps <= 0 || run.Restart.BandwidthMiBps <= 0 {
		t.Error("non-positive bandwidth")
	}
	if run.Restart.BandwidthMiBps <= run.Checkpoint.BandwidthMiBps {
		t.Errorf("restart read (%.0f) should beat checkpoint write (%.0f)",
			run.Restart.BandwidthMiBps, run.Checkpoint.BandwidthMiBps)
	}
	if run.Nodes != 2 {
		t.Errorf("nodes = %d", run.Nodes)
	}
}

func TestModeOrdering(t *testing.T) {
	results := map[FileMode]float64{}
	for _, mode := range []FileMode{SingleSharedFile, FilePerProcess, FilePerGroup} {
		c := Default()
		c.Mode = mode
		c.API = cluster.POSIX
		run, err := runner(42).Run(c)
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = run.Checkpoint.BandwidthMiBps
	}
	// File-per-group should beat single-shared-file (less lock contention).
	if results[FilePerGroup] <= results[SingleSharedFile] {
		t.Errorf("file-per-group (%.0f) should beat single-shared-file (%.0f)",
			results[FilePerGroup], results[SingleSharedFile])
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := runner(7).Run(Default())
	b, _ := runner(7).Run(Default())
	if a.Checkpoint != b.Checkpoint || a.Restart != b.Restart {
		t.Error("same-seed runs differ")
	}
}

func TestRunErrors(t *testing.T) {
	nr := &Runner{}
	if _, err := nr.Run(Default()); err == nil {
		t.Error("want error for missing machine")
	}
	c := Default()
	c.Tasks = -1
	if _, err := runner(1).Run(c); err == nil {
		t.Error("want error for invalid config")
	}
	c = Default()
	c.Tasks = 10_000_000
	if _, err := runner(1).Run(c); err == nil {
		t.Error("want error for oversubscription")
	}
}

func TestOutputParseRoundTrip(t *testing.T) {
	run, err := runner(3).Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOutput(&buf, run); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"HACC_IO-1.0: HACC checkpoint/restart I/O benchmark",
		"API        : MPIIO",
		"Mode       : single-shared-file",
		"Ranks      : 40 (2 nodes)",
		"Particles  : 2000000 per rank (38 bytes each)",
		"Checkpoint :",
		"Restart    :",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
	p, err := ParseOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != Version || p.API != "MPIIO" || p.Mode != string(SingleSharedFile) {
		t.Errorf("header: %+v", p)
	}
	if p.Ranks != 40 || p.Nodes != 2 || p.Particles != 2000000 {
		t.Errorf("shape: %+v", p)
	}
	if math.Abs(p.Checkpoint.BandwidthMiBps-run.Checkpoint.BandwidthMiBps) > 0.01 {
		t.Errorf("checkpoint bw parsed %v, want %v", p.Checkpoint.BandwidthMiBps, run.Checkpoint.BandwidthMiBps)
	}
	if p.Restart.Bytes != run.Restart.Bytes {
		t.Errorf("restart bytes parsed %d, want %d", p.Restart.Bytes, run.Restart.Bytes)
	}
	if p.Began.IsZero() || !p.Finished.After(p.Began) {
		t.Error("timestamps not parsed")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := ParseOutput(strings.NewReader("zzz\n")); err == nil {
		t.Error("garbage should not parse")
	}
}

func TestSmallBufferTransfer(t *testing.T) {
	c := Default()
	c.ParticlesPerRank = 10 // 380 bytes per rank: transfer shrinks to fit
	run, err := runner(2).Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Checkpoint.Bytes != int64(40)*10*BytesPerParticle {
		t.Errorf("bytes = %d", run.Checkpoint.Bytes)
	}
}
