// Package haccio reimplements the HACC-IO benchmark as a simulator. HACC-IO
// replays the checkpoint/restart I/O of the HACC cosmology code: every rank
// writes (and reads back) a fixed-size record per particle, through POSIX or
// MPI-IO, into a single shared file, one file per process, or one file per
// group. The paper integrates HACC-IO as a third knowledge generator to
// cover real checkpoint/restart patterns.
package haccio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/units"
)

// Version is the emitted benchmark version string.
const Version = "HACC_IO-1.0"

// BytesPerParticle is HACC's record size: xx,yy,zz,vx,vy,vz,phi as float32
// (28 bytes), a 64-bit particle id, and a 16-bit mask.
const BytesPerParticle = 38

// FileMode is how ranks map to files.
type FileMode string

// Supported file access modes.
const (
	SingleSharedFile FileMode = "single-shared-file"
	FilePerProcess   FileMode = "file-per-process"
	FilePerGroup     FileMode = "file-per-group"
)

// Config describes one HACC-IO invocation.
type Config struct {
	ParticlesPerRank int
	Tasks            int
	TasksPerNode     int
	API              cluster.API // POSIX or MPIIO
	Mode             FileMode
	GroupSize        int // ranks per file for FilePerGroup
	OutputFile       string
}

// Default returns a configuration comparable to common HACC-IO runs.
func Default() Config {
	return Config{
		ParticlesPerRank: 2_000_000,
		Tasks:            40,
		TasksPerNode:     20,
		API:              cluster.MPIIO,
		Mode:             SingleSharedFile,
		GroupSize:        20,
		OutputFile:       "/scratch/hacc/restart",
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ParticlesPerRank <= 0 {
		return fmt.Errorf("haccio: particles per rank must be positive")
	}
	if c.Tasks <= 0 {
		return fmt.Errorf("haccio: tasks must be positive")
	}
	if c.API != cluster.POSIX && c.API != cluster.MPIIO {
		return fmt.Errorf("haccio: unsupported api %q (POSIX or MPIIO)", c.API)
	}
	switch c.Mode {
	case SingleSharedFile, FilePerProcess, FilePerGroup:
	default:
		return fmt.Errorf("haccio: unknown file mode %q", c.Mode)
	}
	if c.Mode == FilePerGroup && c.GroupSize <= 0 {
		return fmt.Errorf("haccio: group size must be positive for file-per-group")
	}
	return nil
}

// PhaseResult is the outcome of the checkpoint (write) or restart (read)
// phase.
type PhaseResult struct {
	Op             cluster.Op
	BandwidthMiBps float64
	Seconds        float64
	Bytes          int64
}

// Run is one HACC-IO execution: a checkpoint write followed by a restart
// read.
type Run struct {
	Config     Config
	Nodes      int
	Began      time.Time
	Finished   time.Time
	Checkpoint PhaseResult
	Restart    PhaseResult
}

// Runner executes HACC-IO on a modelled machine.
type Runner struct {
	Machine *cluster.Machine
	Seed    uint64
	Clock   time.Time
}

var referenceClock = time.Date(2022, 7, 9, 8, 0, 0, 0, time.UTC)

// Run simulates checkpoint and restart.
func (r *Runner) Run(cfg Config) (*Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.Machine == nil {
		return nil, fmt.Errorf("haccio: runner has no machine")
	}
	clock := r.Clock
	if clock.IsZero() {
		clock = referenceClock
	}
	src := rng.New(r.Seed)
	perRank := int64(cfg.ParticlesPerRank) * BytesPerParticle
	run := &Run{Config: cfg, Began: clock}

	elapsed := 0.0
	for _, op := range []cluster.Op{cluster.Write, cluster.Read} {
		req := cluster.IORequest{
			Op:           op,
			API:          cfg.API,
			Tasks:        cfg.Tasks,
			TasksPerNode: cfg.TasksPerNode,
			// Each rank streams its whole particle buffer as large
			// contiguous transfers (HACC writes each variable array in
			// one call); model as 8 MiB transfers.
			TransferSize: chooseTransfer(perRank),
			BlockSize:    roundUp(perRank, chooseTransfer(perRank)),
			Segments:     1,
			FilePerProc:  cfg.Mode == FilePerProcess,
			Collective:   cfg.Mode == SingleSharedFile && cfg.API == cluster.MPIIO,
			Fsync:        true,
			ReorderTasks: true, // restart never re-reads from page cache
		}
		res, err := r.Machine.Simulate(req, src.Fork())
		if err != nil {
			return nil, fmt.Errorf("haccio: %v phase: %w", op, err)
		}
		// File-per-group sits between shared-file lock overhead and
		// file-per-process metadata pressure; model as a mild bonus over
		// the shared-file result.
		bw := res.BandwidthMiBps
		if cfg.Mode == FilePerGroup {
			bw *= 1.06
		}
		bytes := perRank * int64(cfg.Tasks)
		sec := float64(bytes) / (1 << 20) / bw
		pr := PhaseResult{Op: op, BandwidthMiBps: bw, Seconds: sec, Bytes: bytes}
		if op == cluster.Write {
			run.Checkpoint = pr
		} else {
			run.Restart = pr
		}
		elapsed += sec
	}
	tpn := cfg.TasksPerNode
	if tpn <= 0 {
		tpn = r.Machine.CoresPerNode
	}
	run.Nodes = (cfg.Tasks + tpn - 1) / tpn
	run.Finished = run.Began.Add(time.Duration(elapsed * float64(time.Second)))
	return run, nil
}

func chooseTransfer(perRank int64) int64 {
	t := int64(8 * units.MiB)
	if perRank < t {
		return perRank
	}
	return t
}

func roundUp(v, m int64) int64 {
	if m <= 0 {
		return v
	}
	if r := v % m; r != 0 {
		return v + m - r
	}
	return v
}

const stampLayout = "2006-01-02 15:04:05"

// WriteOutput renders the run in this simulator's documented text format.
func WriteOutput(w io.Writer, run *Run) error {
	cfg := run.Config
	var b strings.Builder
	fmt.Fprintf(&b, "%s: HACC checkpoint/restart I/O benchmark\n", Version)
	fmt.Fprintf(&b, "Began      : %s\n", run.Began.Format(stampLayout))
	fmt.Fprintf(&b, "API        : %s\n", cfg.API)
	fmt.Fprintf(&b, "Mode       : %s\n", cfg.Mode)
	fmt.Fprintf(&b, "Ranks      : %d (%d nodes)\n", cfg.Tasks, run.Nodes)
	fmt.Fprintf(&b, "Particles  : %d per rank (%d bytes each)\n", cfg.ParticlesPerRank, BytesPerParticle)
	fmt.Fprintf(&b, "File       : %s\n", cfg.OutputFile)
	fmt.Fprintf(&b, "Checkpoint : %d bytes in %.3f s -> %.2f MiB/s\n",
		run.Checkpoint.Bytes, run.Checkpoint.Seconds, run.Checkpoint.BandwidthMiBps)
	fmt.Fprintf(&b, "Restart    : %d bytes in %.3f s -> %.2f MiB/s\n",
		run.Restart.Bytes, run.Restart.Seconds, run.Restart.BandwidthMiBps)
	fmt.Fprintf(&b, "Finished   : %s\n", run.Finished.Format(stampLayout))
	_, err := io.WriteString(w, b.String())
	return err
}

// ParsedRun is HACC-IO output decoded back into structured data.
type ParsedRun struct {
	Version    string
	API        string
	Mode       string
	Ranks      int
	Nodes      int
	Particles  int
	File       string
	Began      time.Time
	Finished   time.Time
	Checkpoint PhaseResult
	Restart    PhaseResult
}

// ParseOutput decodes the text produced by WriteOutput.
func ParseOutput(r io.Reader) (*ParsedRun, error) {
	sc := bufio.NewScanner(r)
	p := &ParsedRun{}
	parsePhase := func(rest string, op cluster.Op) PhaseResult {
		var bytes int64
		var sec, bw float64
		fmt.Sscanf(rest, "%d bytes in %f s -> %f MiB/s", &bytes, &sec, &bw)
		return PhaseResult{Op: op, Bytes: bytes, Seconds: sec, BandwidthMiBps: bw}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		i := strings.Index(line, ":")
		if i < 0 {
			continue
		}
		key := strings.TrimSpace(line[:i])
		val := strings.TrimSpace(line[i+1:])
		switch key {
		case "Began":
			p.Began = parseStamp(val)
		case "Finished":
			p.Finished = parseStamp(val)
		case "API":
			p.API = val
		case "Mode":
			p.Mode = val
		case "File":
			p.File = val
		case "Ranks":
			fmt.Sscanf(val, "%d (%d nodes)", &p.Ranks, &p.Nodes)
		case "Particles":
			p.Particles, _ = strconv.Atoi(strings.Fields(val)[0])
		case "Checkpoint":
			p.Checkpoint = parsePhase(val, cluster.Write)
		case "Restart":
			p.Restart = parsePhase(val, cluster.Read)
		default:
			if strings.HasPrefix(line, "HACC_IO") {
				p.Version = strings.TrimSpace(strings.Split(line, ":")[0])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Version == "" && p.Ranks == 0 {
		return nil, fmt.Errorf("haccio: input does not look like HACC-IO output")
	}
	return p, nil
}

func parseStamp(s string) time.Time {
	t, err := time.Parse(stampLayout, s)
	if err != nil {
		return time.Time{}
	}
	return t
}
