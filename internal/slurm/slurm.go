// Package slurm models the workload-manager context the paper plans to
// fold into the knowledge cycle ("it is planned to collect further
// information from workload managers such as Slurm, thus providing
// context between anomaly and causes"): job accounting records in
// `sacct`-style pipe-separated text, a generator for the modelled
// cluster, a parser, and a correlator that links a performance anomaly's
// time window to the jobs sharing the machine — the missing causal
// context for "who congested the file system during iteration 2?".
package slurm

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// JobState is a Slurm job state.
type JobState string

// Common job states.
const (
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
	StateCancelled JobState = "CANCELLED"
	StateNodeFail  JobState = "NODE_FAIL"
)

// Job is one accounting record.
type Job struct {
	JobID     int64
	Name      string
	User      string
	Partition string
	Nodes     int
	NodeList  string // compact Slurm notation, e.g. "fuchs[001-004]"
	State     JobState
	Start     time.Time
	End       time.Time // zero while running
	// WriteMiBps is the job's average write demand on the shared file
	// system, when accounting collected it (comment field in real life;
	// first-class here so the correlator can rank suspects).
	WriteMiBps float64
}

// Active reports whether the job was running at time t.
func (j Job) Active(t time.Time) bool {
	if t.Before(j.Start) {
		return false
	}
	return j.End.IsZero() || !t.After(j.End)
}

// Overlaps reports whether the job ran at any point in [from, to].
func (j Job) Overlaps(from, to time.Time) bool {
	if to.Before(j.Start) {
		return false
	}
	return j.End.IsZero() || !from.After(j.End)
}

const timeLayout = "2006-01-02T15:04:05"

// sacctHeader is the field order of the pipe-separated format.
const sacctHeader = "JobID|JobName|User|Partition|NNodes|NodeList|State|Start|End|AveDiskWrite"

// WriteSacct renders jobs in `sacct --parsable2`-style text.
func WriteSacct(w io.Writer, jobs []Job) error {
	var b strings.Builder
	b.WriteString(sacctHeader + "\n")
	for _, j := range jobs {
		end := "Unknown"
		if !j.End.IsZero() {
			end = j.End.Format(timeLayout)
		}
		fmt.Fprintf(&b, "%d|%s|%s|%s|%d|%s|%s|%s|%s|%.2fM\n",
			j.JobID, j.Name, j.User, j.Partition, j.Nodes, j.NodeList,
			j.State, j.Start.Format(timeLayout), end, j.WriteMiBps)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseSacct decodes `sacct --parsable2` text written by WriteSacct (and
// format-compatible with real sacct given the matching field list).
func ParseSacct(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	var jobs []Job
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if line != sacctHeader {
				return nil, fmt.Errorf("slurm: unexpected header %q", line)
			}
			continue
		}
		f := strings.Split(line, "|")
		if len(f) != 10 {
			return nil, fmt.Errorf("slurm: record has %d fields, want 10: %q", len(f), line)
		}
		id, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("slurm: job id %q: %v", f[0], err)
		}
		nodes, err := strconv.Atoi(f[4])
		if err != nil {
			return nil, fmt.Errorf("slurm: node count %q: %v", f[4], err)
		}
		start, err := time.Parse(timeLayout, f[7])
		if err != nil {
			return nil, fmt.Errorf("slurm: start %q: %v", f[7], err)
		}
		var end time.Time
		if f[8] != "Unknown" {
			end, err = time.Parse(timeLayout, f[8])
			if err != nil {
				return nil, fmt.Errorf("slurm: end %q: %v", f[8], err)
			}
		}
		var wr float64
		fmt.Sscanf(f[9], "%fM", &wr)
		jobs = append(jobs, Job{
			JobID: id, Name: f[1], User: f[2], Partition: f[3],
			Nodes: nodes, NodeList: f[5], State: JobState(f[6]),
			Start: start, End: end, WriteMiBps: wr,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("slurm: empty input")
	}
	return jobs, nil
}

// ExpandNodeList expands compact Slurm node notation ("fuchs[001-003,007]",
// "fuchs005") into individual host names.
func ExpandNodeList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("slurm: empty node list")
	}
	open := strings.Index(s, "[")
	if open < 0 {
		return []string{s}, nil
	}
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("slurm: unbalanced brackets in %q", s)
	}
	prefix := s[:open]
	spec := s[open+1 : len(s)-1]
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("slurm: empty range in %q", s)
		}
		if i := strings.Index(part, "-"); i >= 0 {
			loS, hiS := part[:i], part[i+1:]
			lo, err := strconv.Atoi(loS)
			if err != nil {
				return nil, fmt.Errorf("slurm: range start %q: %v", loS, err)
			}
			hi, err := strconv.Atoi(hiS)
			if err != nil {
				return nil, fmt.Errorf("slurm: range end %q: %v", hiS, err)
			}
			if hi < lo {
				return nil, fmt.Errorf("slurm: inverted range %q", part)
			}
			width := len(loS)
			for n := lo; n <= hi; n++ {
				out = append(out, fmt.Sprintf("%s%0*d", prefix, width, n))
			}
		} else {
			n, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("slurm: node index %q: %v", part, err)
			}
			out = append(out, fmt.Sprintf("%s%0*d", prefix, len(part), n))
		}
	}
	return out, nil
}

// SynthesizeConfig parameterizes synthetic accounting generation.
type SynthesizeConfig struct {
	// Jobs is how many records to generate.
	Jobs int
	// From/To bound the simulated accounting window.
	From, To time.Time
	// MaxNodes bounds per-job node counts.
	MaxNodes int
	// HeavyWriterEvery inserts a high-I/O job every n records (0 = none).
	HeavyWriterEvery int
}

// randSource is the minimal PRNG surface Synthesize needs, satisfied by
// rng.Source.
type randSource interface {
	Intn(n int) int
	Range(lo, hi float64) float64
	Float64() float64
}

// Synthesize generates a plausible accounting history for the modelled
// cluster: a mix of small and parallel jobs with start/end times inside
// the window, occasional failures, and optional heavy writers. It gives
// experiments a realistic context population without real Slurm.
func Synthesize(cfg SynthesizeConfig, src randSource) ([]Job, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("slurm: job count must be positive")
	}
	if !cfg.To.After(cfg.From) {
		return nil, fmt.Errorf("slurm: empty accounting window")
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 16
	}
	users := []string{"alice", "bob", "carol", "dave", "erin"}
	names := []string{"cfd-sim", "md-run", "ml-train", "postproc", "genomics"}
	span := cfg.To.Sub(cfg.From)
	var jobs []Job
	for i := 0; i < cfg.Jobs; i++ {
		start := cfg.From.Add(time.Duration(src.Float64() * float64(span) * 0.8))
		dur := time.Duration(src.Range(60, 3600)) * time.Second
		end := start.Add(dur)
		state := StateCompleted
		switch {
		case src.Float64() < 0.03:
			state = StateNodeFail
		case src.Float64() < 0.05:
			state = StateFailed
		}
		nodes := 1 + src.Intn(cfg.MaxNodes)
		first := 1 + src.Intn(180)
		nodeList := fmt.Sprintf("fuchs%03d", first)
		if nodes > 1 {
			nodeList = fmt.Sprintf("fuchs[%03d-%03d]", first, first+nodes-1)
		}
		wr := src.Range(0, 150)
		if cfg.HeavyWriterEvery > 0 && i%cfg.HeavyWriterEvery == 0 {
			wr = src.Range(3000, 9000)
		}
		jobs = append(jobs, Job{
			JobID:      int64(10000 + i),
			Name:       names[src.Intn(len(names))],
			User:       users[src.Intn(len(users))],
			Partition:  "parallel",
			Nodes:      nodes,
			NodeList:   nodeList,
			State:      state,
			Start:      start,
			End:        end,
			WriteMiBps: wr,
		})
	}
	return jobs, nil
}

// Suspect is a job implicated in an anomaly window, with its ranking
// score.
type Suspect struct {
	Job   Job
	Score float64
	// Reason explains the implication (overlap + demand, node failure).
	Reason string
}

// CorrelateWindow returns the jobs that overlap the anomaly window
// [from, to], ranked by plausibility as the cause: node-failure states
// first, then by file system write demand. The excludeUser filter drops
// the victim's own job from the suspect list.
func CorrelateWindow(jobs []Job, from, to time.Time, excludeUser string) []Suspect {
	var out []Suspect
	for _, j := range jobs {
		if !j.Overlaps(from, to) {
			continue
		}
		if excludeUser != "" && j.User == excludeUser {
			continue
		}
		s := Suspect{Job: j}
		switch j.State {
		case StateNodeFail:
			// Hardware-implicating states always outrank demand-based
			// suspicion, regardless of how much a neighbour was writing.
			s.Score = 2e9 + j.WriteMiBps
			s.Reason = "job ended in NODE_FAIL during the window"
		case StateFailed:
			s.Score = 1e9 + j.WriteMiBps
			s.Reason = "job failed during the window"
		default:
			s.Score = j.WriteMiBps
			s.Reason = fmt.Sprintf("concurrent job writing %.0f MiB/s to the shared file system", j.WriteMiBps)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Job.JobID < out[j].Job.JobID
	})
	return out
}

// Report renders suspects as text for the anomaly report.
func Report(suspects []Suspect) string {
	if len(suspects) == 0 {
		return "no concurrent jobs in the anomaly window\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d suspect job(s) in the anomaly window:\n", len(suspects))
	for _, s := range suspects {
		fmt.Fprintf(&b, "  - job %d (%s, user %s, %s): %s\n",
			s.Job.JobID, s.Job.Name, s.Job.User, s.Job.NodeList, s.Reason)
	}
	return b.String()
}
