package slurm

import (
	"bytes"

	"reflect"
	"repro/internal/rng"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func t0() time.Time { return time.Date(2022, 7, 7, 10, 0, 0, 0, time.UTC) }

func sampleJobs() []Job {
	base := t0()
	return []Job{
		{JobID: 101, Name: "ior-bench", User: "zhuz", Partition: "parallel",
			Nodes: 4, NodeList: "fuchs[001-004]", State: StateCompleted,
			Start: base, End: base.Add(10 * time.Minute), WriteMiBps: 2850},
		{JobID: 102, Name: "cfd-sim", User: "alice", Partition: "parallel",
			Nodes: 16, NodeList: "fuchs[010-025]", State: StateCompleted,
			Start: base.Add(2 * time.Minute), End: base.Add(8 * time.Minute), WriteMiBps: 4100.5},
		{JobID: 103, Name: "postproc", User: "bob", Partition: "serial",
			Nodes: 1, NodeList: "fuchs030", State: StateRunning,
			Start: base.Add(3 * time.Minute), WriteMiBps: 12},
		{JobID: 104, Name: "ml-train", User: "carol", Partition: "parallel",
			Nodes: 2, NodeList: "fuchs[040-041]", State: StateNodeFail,
			Start: base.Add(1 * time.Minute), End: base.Add(4 * time.Minute), WriteMiBps: 300},
	}
}

func TestSacctRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSacct(&buf, sampleJobs()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "JobID|JobName|User|") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "103|postproc|bob|serial|1|fuchs030|RUNNING|") ||
		!strings.Contains(out, "|Unknown|") {
		t.Errorf("running job rendering wrong:\n%s", out)
	}
	jobs, err := ParseSacct(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, sampleJobs()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", jobs, sampleJobs())
	}
}

func TestParseSacctErrors(t *testing.T) {
	cases := []string{
		"",
		"WrongHeader\n",
		sacctHeader + "\nonly|three|fields\n",
		sacctHeader + "\nx|n|u|p|1|l|COMPLETED|2022-07-07T10:00:00|Unknown|0M\n",
		sacctHeader + "\n1|n|u|p|x|l|COMPLETED|2022-07-07T10:00:00|Unknown|0M\n",
		sacctHeader + "\n1|n|u|p|1|l|COMPLETED|notatime|Unknown|0M\n",
		sacctHeader + "\n1|n|u|p|1|l|COMPLETED|2022-07-07T10:00:00|notatime|0M\n",
	}
	for i, in := range cases {
		if _, err := ParseSacct(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestActiveOverlaps(t *testing.T) {
	j := sampleJobs()[1] // 10:02 .. 10:08
	if j.Active(t0()) {
		t.Error("not active before start")
	}
	if !j.Active(t0().Add(5 * time.Minute)) {
		t.Error("active mid-run")
	}
	if j.Active(t0().Add(9 * time.Minute)) {
		t.Error("not active after end")
	}
	running := sampleJobs()[2]
	if !running.Active(t0().Add(100 * time.Hour)) {
		t.Error("running job active indefinitely")
	}
	if !j.Overlaps(t0(), t0().Add(3*time.Minute)) {
		t.Error("window overlapping start")
	}
	if j.Overlaps(t0().Add(9*time.Minute), t0().Add(10*time.Minute)) {
		t.Error("window after end")
	}
	if j.Overlaps(t0().Add(-2*time.Minute), t0().Add(time.Minute)) {
		t.Error("window before start")
	}
}

func TestExpandNodeList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"fuchs005", []string{"fuchs005"}},
		{"fuchs[001-003]", []string{"fuchs001", "fuchs002", "fuchs003"}},
		{"fuchs[001-002,007]", []string{"fuchs001", "fuchs002", "fuchs007"}},
		{"fuchs[098-101]", []string{"fuchs098", "fuchs099", "fuchs100", "fuchs101"}},
		{"n[1-3]", []string{"n1", "n2", "n3"}},
	}
	for _, c := range cases {
		got, err := ExpandNodeList(c.in)
		if err != nil {
			t.Errorf("ExpandNodeList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ExpandNodeList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fuchs[001-", "fuchs[003-001]", "fuchs[a-b]", "fuchs[1,]", "fuchs[x]"} {
		if _, err := ExpandNodeList(bad); err == nil {
			t.Errorf("ExpandNodeList(%q) should fail", bad)
		}
	}
}

// Property: expanded range length matches the arithmetic count.
func TestExpandNodeListCountProperty(t *testing.T) {
	f := func(lo, span uint8) bool {
		l := int(lo%100) + 1
		h := l + int(span%50)
		in := "node[" + pad3(l) + "-" + pad3(h) + "]"
		got, err := ExpandNodeList(in)
		return err == nil && len(got) == h-l+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func pad3(v int) string {
	s := "00" + itoa(v)
	return s[len(s)-3:]
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestCorrelateWindow(t *testing.T) {
	jobs := sampleJobs()
	// Anomaly during minutes 3–5 (the paper's iteration 2 window).
	from, to := t0().Add(3*time.Minute), t0().Add(5*time.Minute)
	suspects := CorrelateWindow(jobs, from, to, "zhuz")
	if len(suspects) != 3 {
		t.Fatalf("suspects = %d: %+v", len(suspects), suspects)
	}
	// NODE_FAIL ranks first, then the heavy writer, then the tiny job.
	if suspects[0].Job.JobID != 104 || !strings.Contains(suspects[0].Reason, "NODE_FAIL") {
		t.Errorf("first suspect = %+v", suspects[0])
	}
	if suspects[1].Job.JobID != 102 {
		t.Errorf("second suspect = %+v", suspects[1])
	}
	if suspects[2].Job.JobID != 103 {
		t.Errorf("third suspect = %+v", suspects[2])
	}
	// The victim's own job is excluded.
	for _, s := range suspects {
		if s.Job.User == "zhuz" {
			t.Error("victim job not excluded")
		}
	}
	// Disjoint window yields nothing.
	none := CorrelateWindow(jobs, t0().Add(2*time.Hour), t0().Add(3*time.Hour), "")
	for _, s := range none {
		if s.Job.State != StateRunning {
			t.Errorf("job %d should not overlap a far-future window", s.Job.JobID)
		}
	}
	rep := Report(suspects)
	if !strings.Contains(rep, "3 suspect job(s)") || !strings.Contains(rep, "cfd-sim") {
		t.Errorf("report = %q", rep)
	}
	if got := Report(nil); !strings.Contains(got, "no concurrent jobs") {
		t.Errorf("empty report = %q", got)
	}
}

func TestSynthesize(t *testing.T) {
	from := t0()
	to := from.Add(6 * time.Hour)
	src := rng.New(7)
	jobs, err := Synthesize(SynthesizeConfig{Jobs: 50, From: from, To: to, MaxNodes: 8, HeavyWriterEvery: 10}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 50 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	heavy := 0
	for i, j := range jobs {
		if j.Start.Before(from) || j.Start.After(to) {
			t.Errorf("job %d starts outside the window: %v", i, j.Start)
		}
		if !j.End.After(j.Start) {
			t.Errorf("job %d has non-positive duration", i)
		}
		if j.Nodes < 1 || j.Nodes > 8 {
			t.Errorf("job %d nodes = %d", i, j.Nodes)
		}
		if j.WriteMiBps < 0 {
			t.Errorf("job %d negative demand", i)
		}
		if j.WriteMiBps > 1000 {
			heavy++
		}
		// Node lists expand consistently with the node count.
		hosts, err := ExpandNodeList(j.NodeList)
		if err != nil {
			t.Errorf("job %d node list %q: %v", i, j.NodeList, err)
			continue
		}
		if len(hosts) != j.Nodes {
			t.Errorf("job %d: %d hosts for %d nodes", i, len(hosts), j.Nodes)
		}
	}
	if heavy < 3 {
		t.Errorf("heavy writers = %d, want every ~10th job", heavy)
	}
	// Round trip through sacct.
	var buf bytes.Buffer
	if err := WriteSacct(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSacct(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Errorf("sacct round trip lost jobs: %d", len(back))
	}
	// Errors.
	if _, err := Synthesize(SynthesizeConfig{Jobs: 0, From: from, To: to}, src); err == nil {
		t.Error("zero jobs should fail")
	}
	if _, err := Synthesize(SynthesizeConfig{Jobs: 1, From: to, To: from}, src); err == nil {
		t.Error("inverted window should fail")
	}
}
