// Package campaign implements a parallel scheduler for the knowledge
// cycle: a sweep specification (a JUBE configuration or an explicit list
// of generators) expands into independent run units that a bounded worker
// pool executes with per-unit retries, graceful cancellation, and batched
// ingestion into a shared knowledge store.
//
// Reproducibility is the design center. Every unit's seed derives from the
// campaign base seed and the unit's index alone (core.DeriveSeed), each
// attempt runs on a private machine model, and extracted knowledge is
// ingested in unit order through a reorder buffer — so the persisted
// knowledge base is byte-identical whether the campaign ran on one worker
// or sixty-four.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/jube"
)

// Unit is one independent run of the generation+extraction phases: a
// generator plus the index that pins its derived seed and its position in
// the ingestion order.
type Unit struct {
	Index int
	Name  string
	Gen   core.Generator
}

// Spec is an expanded campaign: a stable name, the base seed every unit
// seed derives from, and the ordered unit list.
type Spec struct {
	Name     string
	BaseSeed uint64
	Units    []Unit
}

// FromGenerators builds a campaign spec from an explicit generator list.
// Unit order (and therefore seed assignment) follows the slice.
func FromGenerators(name string, baseSeed uint64, gens []core.Generator) *Spec {
	spec := &Spec{Name: name, BaseSeed: baseSeed}
	for i, g := range gens {
		spec.Units = append(spec.Units, Unit{
			Index: i,
			Name:  fmt.Sprintf("%s#%d", g.Name(), i),
			Gen:   g,
		})
	}
	return spec
}

// FromJUBE expands a JUBE configuration into a campaign spec: every
// parameter combination of every step of every benchmark becomes one unit
// whose generator runs the step's substituted commands through the
// simulator dispatcher. Expansion order is deterministic (benchmarks,
// steps, then ExpandStep's cartesian order), so unit seeds are stable for
// a given configuration.
func FromJUBE(name string, baseSeed uint64, configXML string) (*Spec, error) {
	cfg, err := jube.ParseConfig(strings.NewReader(configXML))
	if err != nil {
		return nil, err
	}
	spec := &Spec{Name: name, BaseSeed: baseSeed}
	for bi := range cfg.Benchmarks {
		b := &cfg.Benchmarks[bi]
		for si := range b.Steps {
			step := &b.Steps[si]
			combos, err := b.ExpandStep(step)
			if err != nil {
				return nil, fmt.Errorf("campaign: expand %s/%s: %w", b.Name, step.Name, err)
			}
			for _, combo := range combos {
				cmds := make([]string, 0, len(step.Do))
				for _, do := range step.Do {
					cmds = append(cmds, jube.Substitute(do, combo))
				}
				spec.Units = append(spec.Units, Unit{
					Index: len(spec.Units),
					Name:  unitName(b.Name, step.Name, combo),
					Gen:   CommandGenerator{Label: step.Name, Commands: cmds, TestFile: combo["testfile"]},
				})
			}
		}
	}
	if len(spec.Units) == 0 {
		return nil, fmt.Errorf("campaign: configuration expanded to no units")
	}
	return spec, nil
}

// unitName renders "bench/step k=v k=v" with keys sorted for stability.
func unitName(bench, step string, combo map[string]string) string {
	keys := make([]string, 0, len(combo))
	for k := range combo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(bench)
	sb.WriteByte('/')
	sb.WriteString(step)
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(combo[k])
	}
	return sb.String()
}

// CommandGenerator runs benchmark command lines through the simulator
// dispatcher; each command's stdout becomes one artifact. It is the unit
// generator FromJUBE produces, and is useful standalone for ad-hoc sweeps
// built from command strings.
type CommandGenerator struct {
	Label    string
	Commands []string
	TestFile string
}

// Name implements core.Generator.
func (g CommandGenerator) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "command"
}

// Generate implements core.Generator.
func (g CommandGenerator) Generate(ctx *core.Context) ([]core.Artifact, error) {
	exec := core.Dispatch(ctx.Machine, ctx.Seed)
	arts := make([]core.Artifact, 0, len(g.Commands))
	for _, cmd := range g.Commands {
		out, err := exec("", cmd)
		if err != nil {
			return nil, err
		}
		arts = append(arts, core.Artifact{Name: cmd, Data: []byte(out), TestFile: g.TestFile})
	}
	return arts, nil
}
