package campaign

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// BenchmarkCampaignThroughput drives full campaign cycles (generation →
// extraction → batched persistence) against an in-memory store. Tracing is
// at its default (off), so this is the number the tracing instrumentation
// must not regress: with no trace context and no slow-query threshold the
// per-query cost is a couple of atomic loads.
func BenchmarkCampaignThroughput(b *testing.B) {
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 1m -s 4 -F -C -i 2 -o /scratch/bench")
	if err != nil {
		b.Fatal(err)
	}
	cfg.NumTasks = 40
	cfg.TasksPerNode = 20
	var gens []core.Generator
	for i := 0; i < 4; i++ {
		gens = append(gens, core.IORGenerator{Config: cfg})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := schema.Open("")
		if err != nil {
			b.Fatal(err)
		}
		s := &Scheduler{Store: st, Workers: 2, BatchSize: 2, Metrics: telemetry.NewRegistry()}
		if _, err := s.Run(context.Background(), FromGenerators("bench", 42, gens)); err != nil {
			b.Fatal(err)
		}
		st.Close()
	}
}
