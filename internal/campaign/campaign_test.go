package campaign

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/schema"
)

func iorGen(t *testing.T, cmd string) core.Generator {
	t.Helper()
	cfg, err := ior.ParseCommandLine(cmd)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumTasks = 40
	cfg.TasksPerNode = 20
	return core.IORGenerator{Config: cfg}
}

func sweepSpec(t *testing.T) *Spec {
	t.Helper()
	var gens []core.Generator
	for _, ts := range []string{"256k", "1m", "4m"} {
		gens = append(gens, iorGen(t, "ior -a mpiio -b 4m -t "+ts+" -s 4 -F -C -i 2 -o /scratch/sweep"))
	}
	gens = append(gens, CommandGenerator{Label: "io500", Commands: []string{"io500 --tasks 40 --tasks-per-node 20"}})
	return FromGenerators("sweep", 42, gens)
}

// dumpKnowledge renders every knowledge table (campaign metadata excluded:
// it records wall times, which legitimately vary) as a deterministic string.
func dumpKnowledge(t *testing.T, st *schema.Store) string {
	t.Helper()
	db, ok := st.DB.(*kdb.DB)
	if !ok {
		t.Fatal("store is not backed by a local kdb.DB")
	}
	var sb strings.Builder
	for _, table := range db.Tables() {
		if table == "campaigns" || table == "campaign_runs" {
			continue
		}
		rows, err := db.Query("SELECT * FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "== %s ==\n", table)
		for _, row := range rows.All() {
			fmt.Fprintf(&sb, "%v\n", row)
		}
	}
	return sb.String()
}

func runSpec(t *testing.T, spec *Spec, workers, batch int) (*Result, *schema.Store) {
	t.Helper()
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := &Scheduler{Store: st, Workers: workers, BatchSize: batch}
	res, err := s.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	res1, st1 := runSpec(t, sweepSpec(t), 1, 2)
	res8, st8 := runSpec(t, sweepSpec(t), 8, 2)
	if res1.OK != 4 || res8.OK != 4 {
		t.Fatalf("ok counts = %d, %d, want 4", res1.OK, res8.OK)
	}
	d1, d8 := dumpKnowledge(t, st1), dumpKnowledge(t, st8)
	if d1 != d8 {
		t.Errorf("knowledge differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", d1, d8)
	}
	// Per-unit seeds are pure functions of (base seed, unit index).
	for i, r := range res8.Runs {
		if want := core.DeriveSeed(42, uint64(i)); r.Seed != want {
			t.Errorf("unit %d seed = %d, want %d", i, r.Seed, want)
		}
	}
}

func TestCampaignBatchSizeDoesNotChangeKnowledge(t *testing.T) {
	_, stPer := runSpec(t, sweepSpec(t), 4, 1)
	_, stBatch := runSpec(t, sweepSpec(t), 4, 100)
	if dumpKnowledge(t, stPer) != dumpKnowledge(t, stBatch) {
		t.Error("knowledge differs between per-unit and single-batch ingestion")
	}
}

func TestCampaignRecordsMetadata(t *testing.T) {
	res, st := runSpec(t, sweepSpec(t), 2, 2)
	meta, runs, err := st.LoadCampaign(res.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != "ok" || meta.Units != 4 || meta.Workers != 2 || meta.BaseSeed != 42 {
		t.Errorf("meta = %+v", meta)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	for i, r := range runs {
		if r.Status != "ok" || r.Attempts != 1 {
			t.Errorf("run %d = %+v", i, r)
		}
		if len(r.ObjectIDs)+len(r.IO500IDs) == 0 {
			t.Errorf("run %d persisted no knowledge ids", i)
		}
	}
	// Unit 3 is the io500 command generator.
	if len(runs[3].IO500IDs) != 1 {
		t.Errorf("io500 unit ids = %+v", runs[3])
	}
}

// flakyGenerator fails the first failures attempts of each campaign run.
type flakyGenerator struct {
	inner    core.Generator
	failures int
	mu       sync.Mutex
	calls    map[uint64]int // per-seed attempt counter
}

func (g *flakyGenerator) Name() string { return "flaky" }

func (g *flakyGenerator) Generate(ctx *core.Context) ([]core.Artifact, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[uint64]int{}
	}
	g.calls[ctx.Seed]++
	n := g.calls[ctx.Seed]
	g.mu.Unlock()
	if n <= g.failures {
		return nil, fmt.Errorf("transient failure %d", n)
	}
	return g.inner.Generate(ctx)
}

func TestCampaignRetriesTransientFailures(t *testing.T) {
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gen := &flakyGenerator{inner: iorGen(t, "ior -a posix -b 1m -t 256k -s 2 -i 1 -o /scratch/f"), failures: 2}
	s := &Scheduler{Store: st, Workers: 2, MaxAttempts: 3, Backoff: time.Millisecond}
	res, err := s.Run(context.Background(), FromGenerators("flaky", 7, []core.Generator{gen, gen}))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 2 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, r := range res.Runs {
		if r.Attempts != 3 {
			t.Errorf("unit %d attempts = %d, want 3", r.Unit.Index, r.Attempts)
		}
	}
}

func TestCampaignRecordsExhaustedFailure(t *testing.T) {
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gen := &flakyGenerator{inner: nil, failures: 1 << 30}
	good := iorGen(t, "ior -a posix -b 1m -t 256k -s 2 -i 1 -o /scratch/g")
	s := &Scheduler{Store: st, Workers: 2, MaxAttempts: 2, Backoff: time.Millisecond}
	res, err := s.Run(context.Background(), FromGenerators("partial", 7, []core.Generator{good, gen}))
	if err != nil {
		t.Fatal(err) // unit failures are recorded, not fatal
	}
	if res.OK != 1 || res.Failed != 1 {
		t.Fatalf("result ok=%d failed=%d", res.OK, res.Failed)
	}
	bad := res.Runs[1]
	if bad.Status != "failed" || bad.Attempts != 2 || bad.Err == nil {
		t.Errorf("failed run = %+v", bad)
	}
	meta, runs, err := st.LoadCampaign(res.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != "failed" {
		t.Errorf("campaign status = %q", meta.Status)
	}
	if runs[1].Status != "failed" || !strings.Contains(runs[1].Error, "transient failure") {
		t.Errorf("persisted failed run = %+v", runs[1])
	}
	// The good unit's knowledge still landed.
	if len(runs[0].ObjectIDs) != 1 {
		t.Errorf("good run ids = %+v", runs[0])
	}
}

func TestCampaignCancellation(t *testing.T) {
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var gens []core.Generator
	for i := 0; i < 16; i++ {
		gens = append(gens, iorGen(t, "ior -a posix -b 1m -t 256k -s 2 -i 1 -o /scratch/c"))
	}
	s := &Scheduler{
		Store:   st,
		Workers: 1, // serial, so cancelling during unit 1 leaves units 2..15 unstarted
		BeforeAttempt: func(u Unit, attempt int, _ *cluster.Machine) {
			if u.Index == 1 {
				cancel()
			}
		},
	}
	res, err := s.Run(ctx, FromGenerators("cancelled", 3, gens))
	if err == nil {
		t.Fatal("cancelled campaign must return an error")
	}
	if res == nil {
		t.Fatal("cancelled campaign must still return its partial result")
	}
	// Units 0 and 1 were already past the cancellation check; the rest
	// must be marked cancelled without running.
	if res.OK != 2 || res.Cancelled != 14 || res.Failed != 0 {
		t.Fatalf("result ok=%d cancelled=%d failed=%d", res.OK, res.Cancelled, res.Failed)
	}
	meta, runs, err := st.LoadCampaign(res.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Status != "cancelled" {
		t.Errorf("campaign status = %q", meta.Status)
	}
	// Completed units persisted their knowledge despite the cancellation.
	if len(runs[0].ObjectIDs) != 1 || runs[15].Status != "cancelled" {
		t.Errorf("runs[0] = %+v, runs[15] = %+v", runs[0], runs[15])
	}
}

func TestFromJUBEExpansion(t *testing.T) {
	xml := `<jube>
  <benchmark name="sweep" outpath="bench_runs">
    <parameterset name="p">
      <parameter name="transfersize">256k,1m</parameter>
      <parameter name="tasks">20,40,80</parameter>
    </parameterset>
    <step name="run">
      <use>p</use>
      <do>ior -a mpiio -b 4m -t $transfersize -s 4 -N $tasks -F -C -i 2 -o /scratch/sweep</do>
    </step>
  </benchmark>
</jube>`
	spec, err := FromJUBE("jube-sweep", 11, xml)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Units) != 6 {
		t.Fatalf("units = %d, want 2x3 cartesian product", len(spec.Units))
	}
	for i, u := range spec.Units {
		if u.Index != i {
			t.Errorf("unit %d has index %d", i, u.Index)
		}
		cg, ok := u.Gen.(CommandGenerator)
		if !ok {
			t.Fatalf("unit %d generator = %T", i, u.Gen)
		}
		if strings.Contains(cg.Commands[0], "$") {
			t.Errorf("unit %d command not fully substituted: %q", i, cg.Commands[0])
		}
	}
	if !strings.Contains(spec.Units[0].Name, "transfersize=256k") {
		t.Errorf("unit name = %q", spec.Units[0].Name)
	}
	// The expansion itself is deterministic: same config, same units.
	again, err := FromJUBE("jube-sweep", 11, xml)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spec.Units {
		if spec.Units[i].Name != again.Units[i].Name {
			t.Errorf("expansion order unstable at unit %d", i)
		}
	}

	if _, err := FromJUBE("bad", 0, `<jube></jube>`); err == nil {
		t.Error("empty config must fail")
	}
}

func TestCampaignRunThroughJUBESpec(t *testing.T) {
	xml := `<jube>
  <benchmark name="sweep" outpath="bench_runs">
    <parameterset name="p">
      <parameter name="transfersize">256k,1m</parameter>
    </parameterset>
    <step name="run">
      <use>p</use>
      <do>ior -a mpiio -b 2m -t $transfersize -s 2 -F -C -i 2 -o /scratch/sweep</do>
    </step>
  </benchmark>
</jube>`
	spec, err := FromJUBE("jube-sweep", 11, xml)
	if err != nil {
		t.Fatal(err)
	}
	res, st := runSpec(t, spec, 2, 2)
	if res.OK != 2 || len(res.ObjectIDs) != 2 {
		t.Fatalf("result = %+v", res)
	}
	a, err := st.LoadObject(res.ObjectIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.LoadObject(res.ObjectIDs[1])
	if err != nil {
		t.Fatal(err)
	}
	if a.Command == b.Command {
		t.Errorf("sweep produced identical commands: %q", a.Command)
	}
}
