package campaign

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/knowledge"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// TestCampaignPersistsSlowTraces: with the slow-query log armed, a
// self-observing campaign persists its slowest traced requests as
// knowledge objects alongside the usual telemetry object.
func TestCampaignPersistsSlowTraces(t *testing.T) {
	t.Cleanup(func() {
		telemetry.SetSlowQueryThreshold(0)
		telemetry.Traces.Reset()
	})
	telemetry.Traces.Reset()

	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	telemetry.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	s := &Scheduler{Store: st, Workers: 2, BatchSize: 2, Metrics: telemetry.NewRegistry(), SelfObserve: true}
	res, err := s.Run(context.Background(), sweepSpec(t))
	telemetry.SetSlowQueryThreshold(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlowTraceIDs) == 0 {
		t.Fatal("no slow traces persisted")
	}
	if len(res.SlowTraceIDs) > maxSlowTraces {
		t.Fatalf("persisted %d slow traces, cap is %d", len(res.SlowTraceIDs), maxSlowTraces)
	}
	o, err := st.LoadObject(res.SlowTraceIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if o.Source != knowledge.SourceTelemetry {
		t.Errorf("source = %q", o.Source)
	}
	if !strings.HasPrefix(o.Command, "iokc-trace ") {
		t.Errorf("command = %q", o.Command)
	}
	if o.Pattern["run"] != "sweep" || o.Pattern["trace_id"] == "" {
		t.Errorf("pattern = %+v", o.Pattern)
	}
	if len(o.Results) == 0 {
		t.Error("trace object has no span results")
	}
}

// TestCampaignNoSlowTracesWithoutThreshold: an unarmed log persists
// nothing extra — SelfObserve alone must not invent trace objects.
func TestCampaignNoSlowTracesWithoutThreshold(t *testing.T) {
	t.Cleanup(func() { telemetry.Traces.Reset() })
	telemetry.Traces.Reset()
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := &Scheduler{Store: st, Workers: 2, BatchSize: 2, Metrics: telemetry.NewRegistry(), SelfObserve: true}
	res, err := s.Run(context.Background(), sweepSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlowTraceIDs) != 0 {
		t.Fatalf("slow traces persisted without a threshold: %v", res.SlowTraceIDs)
	}
}
