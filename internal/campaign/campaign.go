package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/knowledge"
	"repro/internal/rng"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Scheduler executes campaign specs over a bounded worker pool.
//
// Generation and extraction (the expensive, pure phases) run concurrently
// on the workers; persistence runs on the collector in strict unit order,
// one store batch per BatchSize units, so the resulting knowledge base
// does not depend on scheduling.
type Scheduler struct {
	// Store receives the extracted knowledge and the campaign metadata.
	Store *schema.Store
	// NewMachine builds a private machine model per attempt (the model is
	// mutable — fault injection — so workers must not share one). Defaults
	// to cluster.FuchsCSC.
	NewMachine func() *cluster.Machine
	// Registry is the extractor registry (default: built-ins).
	Registry *extract.Registry
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// MaxAttempts is the per-unit attempt budget (default 3). Retries
	// reuse the unit's seed: a flaky failure replays the identical run.
	MaxAttempts int
	// Backoff is the sleep before attempt 2, doubling per further attempt
	// (default 10ms). Cancellation interrupts the sleep.
	Backoff time.Duration
	// BatchSize is the number of units ingested per store batch
	// (default 16); 1 degenerates to per-unit ingestion.
	BatchSize int
	// EnrichNode selects the node whose system information enriches the
	// knowledge (default node 1).
	EnrichNode int
	// BeforeAttempt, when set, runs before each generation attempt —
	// the fault-injection and flakiness hook for tests and experiments.
	BeforeAttempt func(u Unit, attempt int, m *cluster.Machine)
	// Metrics receives the scheduler's counters and histograms
	// (queue wait, retries, ingest batches, phase latencies). Nil means
	// the process-wide telemetry.Default registry.
	Metrics *telemetry.Registry
	// Trace, when set, receives the campaign's span tree: one child per
	// unit with generation/extraction children, plus persistence spans
	// for the ingest batches.
	Trace *telemetry.Span
	// SelfObserve closes the paper's cycle on the pipeline itself: after
	// the campaign finishes, its phase timings are serialized as a
	// telemetry artifact and persisted through the normal
	// extraction/persistence path, so the run's own behavior becomes
	// queryable knowledge (Result.TelemetryID).
	SelfObserve bool
}

// RunOutcome is the in-memory record of one executed unit, mirroring the
// campaign_runs row.
type RunOutcome struct {
	Unit      Unit
	Seed      uint64
	Status    string // "ok", "failed", "cancelled"
	Attempts  int
	Wall      time.Duration
	Err       error
	ObjectIDs []int64
	IO500IDs  []int64
}

// Result summarizes one executed campaign.
type Result struct {
	CampaignID int64
	Name       string
	Workers    int
	Wall       time.Duration
	Runs       []RunOutcome // unit order
	OK         int
	Failed     int
	Cancelled  int
	ObjectIDs  []int64
	IO500IDs   []int64
	// TelemetryID is the knowledge object holding the campaign's own
	// phase timings (0 unless the scheduler ran with SelfObserve).
	TelemetryID int64
	// SlowTraceIDs are the knowledge objects holding the slowest traced
	// requests logged during the campaign (empty unless SelfObserve is set
	// and a slow-query threshold was active).
	SlowTraceIDs []int64
	// FinalLSN is the store's commit LSN after the campaign's last write,
	// when the backing connection exposes one (local kdb databases and
	// replication read routers do). Waiting for a replica to reach this
	// LSN guarantees it serves the whole campaign.
	FinalLSN int64
}

// outcome travels from a worker to the collector: the executed unit plus
// its extractions, not yet persisted.
type outcome struct {
	run RunOutcome
	exs []*extract.Extraction
}

// Run executes the spec. Unit failures are recorded, not fatal: the
// returned error is non-nil only for infrastructure problems (persistence
// errors, an empty spec) or cancellation, in which case the partial Result
// is still returned with the remaining units marked "cancelled".
func (s *Scheduler) Run(ctx context.Context, spec *Spec) (*Result, error) {
	if s.Store == nil {
		return nil, fmt.Errorf("campaign: scheduler has no store")
	}
	if spec == nil || len(spec.Units) == 0 {
		return nil, fmt.Errorf("campaign: spec has no units")
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(spec.Units) {
		workers = len(spec.Units)
	}
	maxAttempts := s.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	batchSize := s.BatchSize
	if batchSize <= 0 {
		batchSize = 16
	}
	newMachine := s.NewMachine
	if newMachine == nil {
		newMachine = cluster.FuchsCSC
	}
	reg := s.Registry
	if reg == nil {
		reg = extract.NewRegistry()
	}
	met := s.Metrics
	if met == nil {
		met = telemetry.Default()
	}
	// The campaign always traces itself: either into the caller's span
	// tree or into a private root, which is what SelfObserve serializes.
	var trace *telemetry.Span
	if s.Trace != nil {
		trace = s.Trace.StartChild("campaign " + spec.Name)
	} else {
		trace = telemetry.StartSpan("campaign " + spec.Name)
	}
	defer trace.End()

	began := time.Now()
	campaignID, err := s.Store.CreateCampaign(spec.Name, spec.BaseSeed, workers, len(spec.Units), began)
	if err != nil {
		return nil, fmt.Errorf("campaign: create campaign record: %w", err)
	}

	jobs := make(chan Unit, len(spec.Units))
	for _, u := range spec.Units {
		jobs <- u
	}
	close(jobs)
	outcomes := make(chan outcome, len(spec.Units))
	activeWorkers := met.Gauge("campaign_active_workers")
	queueWait := met.Histogram("campaign_queue_wait_seconds")
	for w := 0; w < workers; w++ {
		go func() {
			activeWorkers.Add(1)
			defer activeWorkers.Add(-1)
			for u := range jobs {
				// Every unit is enqueued before the workers start, so
				// time-since-start is exactly its queue wait.
				queueWait.Observe(time.Since(began).Seconds())
				outcomes <- s.runUnit(ctx, u, spec.BaseSeed, maxAttempts, backoff, newMachine, reg, met, trace)
			}
		}()
	}

	// Collector: reorder outcomes into unit order and ingest in batches.
	// Workers emit exactly one outcome per unit (cancelled units included),
	// so reading len(spec.Units) outcomes always terminates.
	res := &Result{CampaignID: campaignID, Name: spec.Name, Workers: workers,
		Runs: make([]RunOutcome, len(spec.Units))}
	buffered := make(map[int]outcome, len(spec.Units))
	var pending []outcome
	next := 0
	var persistErr error
	flush := func() {
		if persistErr != nil || len(pending) == 0 {
			return
		}
		span := trace.StartChild("persistence")
		start := time.Now()
		met.Histogram("campaign_ingest_batch_units").Observe(float64(len(pending)))
		persistErr = s.ingest(pending, res)
		span.End()
		sec := time.Since(start).Seconds()
		met.Histogram("campaign_ingest_seconds").Observe(sec)
		met.Histogram(telemetry.Label("cycle_phase_seconds", "phase", "persistence")).Observe(sec)
		pending = pending[:0]
	}
	for range spec.Units {
		oc := <-outcomes
		buffered[oc.run.Unit.Index] = oc
		for {
			oc, ok := buffered[next]
			if !ok {
				break
			}
			delete(buffered, next)
			next++
			res.Runs[oc.run.Unit.Index] = oc.run
			if oc.run.Status == "ok" {
				pending = append(pending, oc)
			}
			if len(pending) >= batchSize {
				flush()
			}
		}
	}
	flush()

	for i := range res.Runs {
		st := res.Runs[i].Status
		met.Counter(telemetry.Label("campaign_units_total", "status", st)).Inc()
		switch st {
		case "ok":
			res.OK++
		case "failed":
			res.Failed++
		case "cancelled":
			res.Cancelled++
		}
	}
	res.Wall = time.Since(began)

	status := "ok"
	switch {
	case persistErr != nil || res.Failed > 0:
		status = "failed"
	case res.Cancelled > 0:
		status = "cancelled"
	}
	if err := s.record(campaignID, status, began, res); err != nil && persistErr == nil {
		persistErr = err
	}
	if s.SelfObserve && persistErr == nil {
		trace.End()
		if err := s.persistTelemetry(spec.Name, trace, reg, res); err != nil {
			persistErr = err
		}
	}
	if s.SelfObserve && persistErr == nil {
		if err := s.persistSlowTraces(spec.Name, began, reg, res); err != nil {
			persistErr = err
		}
	}
	if l, ok := s.Store.DB.(interface{ LSN() int64 }); ok {
		res.FinalLSN = l.LSN()
	}
	if persistErr != nil {
		return res, persistErr
	}
	if res.Cancelled > 0 {
		return res, context.Cause(ctx)
	}
	return res, nil
}

// persistTelemetry closes the knowledge cycle on the campaign itself: the
// span tree's phase timings are serialized as a telemetry artifact and
// pushed through the same extraction/persistence path as benchmark output.
func (s *Scheduler) persistTelemetry(name string, trace *telemetry.Span, reg *extract.Registry, res *Result) error {
	timings := trace.PhaseTimings()
	if len(timings) == 0 {
		return nil
	}
	ex, err := reg.Extract(telemetry.Artifact(name, timings))
	if err != nil {
		return fmt.Errorf("campaign: extract self-telemetry: %w", err)
	}
	if ex.Object == nil {
		return fmt.Errorf("campaign: self-telemetry produced no knowledge object")
	}
	id, err := s.Store.SaveObject(ex.Object)
	if err != nil {
		return fmt.Errorf("campaign: persist self-telemetry: %w", err)
	}
	ex.Object.ID = id
	res.TelemetryID = id
	return nil
}

// maxSlowTraces bounds how many of a campaign's slow traces persist as
// knowledge: only the slowest few carry diagnostic weight.
const maxSlowTraces = 3

// persistSlowTraces extends self-observation to distributed tracing: the
// slowest requests the slow-query log captured while this campaign ran are
// serialized as trace artifacts (SQL + full span tree) and persisted
// through the same extraction path, so p99 forensics survive the run.
func (s *Scheduler) persistSlowTraces(name string, began time.Time, reg *extract.Registry, res *Result) error {
	slow := telemetry.Traces.SlowQueries()
	var ours []telemetry.SlowQuery
	for _, q := range slow {
		if !q.Start.Before(began) {
			ours = append(ours, q)
		}
	}
	sort.Slice(ours, func(i, j int) bool { return ours[i].Seconds > ours[j].Seconds })
	if len(ours) > maxSlowTraces {
		ours = ours[:maxSlowTraces]
	}
	for _, q := range ours {
		spans := telemetry.Traces.Spans(q.TraceID)
		if len(spans) == 0 {
			continue
		}
		ex, err := reg.Extract(telemetry.TraceArtifact(name, q, spans))
		if err != nil {
			return fmt.Errorf("campaign: extract slow trace %s: %w", q.TraceID, err)
		}
		if ex.Object == nil {
			continue
		}
		id, err := s.Store.SaveObject(ex.Object)
		if err != nil {
			return fmt.Errorf("campaign: persist slow trace %s: %w", q.TraceID, err)
		}
		ex.Object.ID = id
		res.SlowTraceIDs = append(res.SlowTraceIDs, id)
	}
	return nil
}

// runUnit executes one unit: derive its seed, then attempt generation and
// extraction up to maxAttempts times with exponential backoff. Every
// attempt gets a fresh machine so injected faults or accumulated state
// cannot leak between attempts (or units).
func (s *Scheduler) runUnit(ctx context.Context, u Unit, baseSeed uint64, maxAttempts int,
	backoff time.Duration, newMachine func() *cluster.Machine, reg *extract.Registry,
	met *telemetry.Registry, trace *telemetry.Span) outcome {
	run := RunOutcome{Unit: u, Seed: core.DeriveSeed(baseSeed, uint64(u.Index))}
	span := trace.StartChild(fmt.Sprintf("unit %d", u.Index))
	defer span.End()
	start := time.Now()
	defer func() { run.Wall = time.Since(start) }()
	genHist := met.Histogram(telemetry.Label("cycle_phase_seconds", "phase", "generation"))
	extHist := met.Histogram(telemetry.Label("cycle_phase_seconds", "phase", "extraction"))
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if ctx.Err() != nil {
			run.Status = "cancelled"
			return outcome{run: run}
		}
		if attempt > 1 {
			met.Counter("campaign_retries_total").Inc()
			// Deterministic seeded jitter: the delay stays a pure function
			// of (unit seed, attempt), so reruns reproduce it exactly while
			// workers that fail together stop retrying in lockstep.
			d := backoff << (attempt - 2)
			jit := rng.New(rng.Derive(run.Seed, uint64(attempt)))
			d += time.Duration(float64(d) * jit.Float64())
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				run.Status = "cancelled"
				return outcome{run: run}
			case <-t.C:
			}
		}
		run.Attempts = attempt
		m := newMachine()
		if s.BeforeAttempt != nil {
			s.BeforeAttempt(u, attempt, m)
		}
		genSpan := span.StartChild("generation")
		genStart := time.Now()
		arts, err := u.Gen.Generate(&core.Context{Machine: m, Seed: run.Seed})
		genSpan.End()
		genHist.Observe(time.Since(genStart).Seconds())
		if err == nil && len(arts) == 0 {
			err = fmt.Errorf("campaign: unit %q produced no artifacts", u.Name)
		}
		var exs []*extract.Extraction
		if err == nil {
			extSpan := span.StartChild("extraction")
			extStart := time.Now()
			exs, err = core.ExtractArtifacts(m, reg, s.EnrichNode, arts)
			extSpan.End()
			extHist.Observe(time.Since(extStart).Seconds())
		}
		if err == nil {
			run.Status = "ok"
			run.Err = nil
			return outcome{run: run, exs: exs}
		}
		run.Err = err
	}
	run.Status = "failed"
	return outcome{run: run}
}

// ingest persists one batch of unit extractions in unit order. Objects
// and IO500 objects each go through the store's batched save (one lock,
// one log flush per kind), and the assigned ids are written back onto the
// outcomes' RunOutcome entries in res.Runs.
func (s *Scheduler) ingest(batch []outcome, res *Result) error {
	// On a sharded store the whole batch is pinned to the shard this key
	// hashes to: campaign and leading unit index, so one batch's object
	// graphs stay colocated while a campaign's successive batches spread
	// across shards. Single-node stores ignore the key.
	key := shard.HashString(fmt.Sprintf("%s/%d/%d", res.Name, res.CampaignID, batch[0].run.Unit.Index))
	var objs []*knowledge.Object
	var objRuns []int // res.Runs index per object, aligned with objs
	var io500s []*knowledge.IO500Object
	var io500Runs []int
	for _, oc := range batch {
		for _, ex := range oc.exs {
			switch {
			case ex.Object != nil:
				objs = append(objs, ex.Object)
				objRuns = append(objRuns, oc.run.Unit.Index)
			case ex.IO500 != nil:
				io500s = append(io500s, ex.IO500)
				io500Runs = append(io500Runs, oc.run.Unit.Index)
			}
		}
	}
	if len(objs) > 0 {
		ids, err := s.Store.SaveObjectsKeyed(key, objs)
		if err != nil {
			return fmt.Errorf("campaign: persist batch (unit %q): %w", res.Runs[objRuns[0]].Unit.Name, err)
		}
		for i, id := range ids {
			objs[i].ID = id
			r := &res.Runs[objRuns[i]]
			r.ObjectIDs = append(r.ObjectIDs, id)
			res.ObjectIDs = append(res.ObjectIDs, id)
		}
	}
	if len(io500s) > 0 {
		ids, err := s.Store.SaveIO500sKeyed(key, io500s)
		if err != nil {
			return fmt.Errorf("campaign: persist batch (unit %q): %w", res.Runs[io500Runs[0]].Unit.Name, err)
		}
		for i, id := range ids {
			io500s[i].ID = id
			r := &res.Runs[io500Runs[i]]
			r.IO500IDs = append(r.IO500IDs, id)
			res.IO500IDs = append(res.IO500IDs, id)
		}
	}
	return nil
}

// record finishes the campaign row and writes the per-unit rows.
func (s *Scheduler) record(campaignID int64, status string, began time.Time, res *Result) error {
	rows := make([]schema.CampaignRun, len(res.Runs))
	for i, r := range res.Runs {
		errText := ""
		if r.Err != nil {
			errText = r.Err.Error()
		}
		rows[i] = schema.CampaignRun{
			Unit:      int64(r.Unit.Index),
			Name:      r.Unit.Name,
			Seed:      r.Seed,
			Status:    r.Status,
			Attempts:  int64(r.Attempts),
			WallMS:    r.Wall.Milliseconds(),
			Error:     errText,
			ObjectIDs: r.ObjectIDs,
			IO500IDs:  r.IO500IDs,
		}
	}
	if err := s.Store.AddCampaignRuns(campaignID, rows); err != nil {
		return fmt.Errorf("campaign: record runs: %w", err)
	}
	if err := s.Store.FinishCampaign(campaignID, status, began.Add(res.Wall), res.Wall.Milliseconds()); err != nil {
		return fmt.Errorf("campaign: finish campaign record: %w", err)
	}
	return nil
}
