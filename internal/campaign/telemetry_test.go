package campaign

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/knowledge"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func TestCampaignSelfObservePersistsTelemetry(t *testing.T) {
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	met := telemetry.NewRegistry()
	s := &Scheduler{Store: st, Workers: 2, BatchSize: 2, Metrics: met, SelfObserve: true}
	res, err := s.Run(context.Background(), sweepSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.TelemetryID == 0 {
		t.Fatal("SelfObserve did not persist a telemetry object")
	}
	o, err := st.LoadObject(res.TelemetryID)
	if err != nil {
		t.Fatal(err)
	}
	if o.Source != knowledge.SourceTelemetry {
		t.Errorf("telemetry object source = %q", o.Source)
	}
	if o.Pattern["run"] != "sweep" {
		t.Errorf("telemetry object run = %q", o.Pattern["run"])
	}
	// One generation and one extraction timing per unit, plus at least one
	// persistence timing per ingest batch.
	if got := len(o.ResultsFor("generation")); got != 4 {
		t.Errorf("generation timings = %d, want 4", got)
	}
	if got := len(o.ResultsFor("extraction")); got != 4 {
		t.Errorf("extraction timings = %d, want 4", got)
	}
	if got := len(o.ResultsFor("persistence")); got == 0 {
		t.Error("no persistence timings")
	}

	snap := met.Snapshot()
	if got := snap.Counters[telemetry.Label("campaign_units_total", "status", "ok")]; got != 4 {
		t.Errorf("campaign_units_total{ok} = %d, want 4", got)
	}
	if got := snap.Histograms["campaign_queue_wait_seconds"].Count; got != 4 {
		t.Errorf("queue wait observations = %d, want 4", got)
	}
	if got := snap.Histograms[telemetry.Label("cycle_phase_seconds", "phase", "generation")].Count; got != 4 {
		t.Errorf("generation phase observations = %d, want 4", got)
	}
	if snap.Histograms["campaign_ingest_batch_units"].Count == 0 {
		t.Error("no ingest batch observations")
	}
}

func TestCampaignTraceSpans(t *testing.T) {
	st, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	root := telemetry.StartSpan("cli")
	s := &Scheduler{Store: st, Workers: 4, Trace: root, Metrics: telemetry.NewRegistry()}
	if _, err := s.Run(context.Background(), sweepSpec(t)); err != nil {
		t.Fatal(err)
	}
	root.End()
	e := root.Export()
	if len(e.Children) != 1 || e.Children[0].Name != "campaign sweep" {
		t.Fatalf("trace children = %+v", e.Children)
	}
	units := 0
	for _, c := range e.Children[0].Children {
		if _, ok := parseUnitName(c.Name); ok {
			units++
			if len(c.Children) == 0 {
				t.Errorf("unit span %q has no phase children", c.Name)
			}
		}
	}
	if units != 4 {
		t.Errorf("unit spans = %d, want 4", units)
	}
}

func parseUnitName(name string) (int, bool) {
	var n int
	_, err := fmt.Sscanf(name, "unit %d", &n)
	return n, err == nil
}

// Retries must stay reproducible with jittered backoff: the delay is a
// pure function of (unit seed, attempt), so two identical flaky campaigns
// produce byte-identical knowledge.
func TestCampaignRetryJitterDeterministic(t *testing.T) {
	runFlaky := func() *schema.Store {
		st, err := schema.Open("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		gen := &flakyGenerator{inner: iorGen(t, "ior -a posix -b 1m -t 256k -s 2 -i 1 -o /scratch/f"), failures: 1}
		s := &Scheduler{Store: st, Workers: 2, MaxAttempts: 3, Backoff: time.Millisecond}
		res, err := s.Run(context.Background(), FromGenerators("flaky", 7, []core.Generator{gen, gen}))
		if err != nil {
			t.Fatal(err)
		}
		if res.OK != 2 {
			t.Fatalf("result = %+v", res)
		}
		return st
	}
	if d1, d2 := dumpKnowledge(t, runFlaky()), dumpKnowledge(t, runFlaky()); d1 != d2 {
		t.Errorf("retried campaigns diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", d1, d2)
	}
}
