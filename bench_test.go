// Top-level benchmark harness: one benchmark per paper artifact (Figures
// 3, 5 and 6, the §V-E1 cycle example, the outlook's prediction, and the
// bounding-box mapping), plus the ablation benchmarks DESIGN.md calls out
// (kdb WAL-append vs snapshot-compaction, closed-form vs event-loop
// simulation, streaming vs regex extraction, JSON vs gob serialization).
//
// Each figure benchmark prints its regenerated report once, so
// `go test -bench .` both times the pipeline and reproduces the numbers
// recorded in EXPERIMENTS.md.
package repro

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chart"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/darshan"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/hdf5lite"
	"repro/internal/ior"
	"repro/internal/jube"
	"repro/internal/kdb"
	"repro/internal/knowledge"
	"repro/internal/monitor"
	"repro/internal/repl"
	"repro/internal/rng"
	"repro/internal/schema"
	"repro/internal/sctuner"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
)

var printOnce sync.Map

func printFigure(b *testing.B, key, report string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", report)
	}
}

// BenchmarkFig5IterationVariance regenerates Fig. 5: six IOR iterations on
// 80 ranks with the iteration-2 write anomaly, detected through the cycle.
func BenchmarkFig5IterationVariance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(uint64(7 + i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "fig5", r.Report())
		}
	}
}

// BenchmarkFig6IO500BoundingBox regenerates Fig. 6: eight IO500 runs with
// a broken node depressing ior-easy-read, aggregated and diagnosed.
func BenchmarkFig6IO500BoundingBox(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(8, uint64(3+i), 0.35)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "fig6", r.Report())
		}
	}
}

// BenchmarkFig3ImpactFactors regenerates a quantitative Fig. 3: the
// one-factor-at-a-time sensitivity sweep over the I/O performance impact
// factors.
func BenchmarkFig3ImpactFactors(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		factors, err := experiments.Fig3(uint64(5 + i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "fig3", experiments.Fig3Report(factors))
		}
	}
}

// BenchmarkExample1NewKnowledge regenerates §V-E1: knowledge → modified
// configuration → new knowledge.
func BenchmarkExample1NewKnowledge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CycleExample(uint64(11 + i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "cycle", r.Report())
		}
	}
}

// BenchmarkPredictionAccuracy regenerates the outlook's linear-regression
// performance prediction over a knowledge sweep.
func BenchmarkPredictionAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Prediction(uint64(13 + i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "predict", r.Report())
		}
	}
}

// BenchmarkBoundingBoxMapping regenerates the §II-B expectation mapping of
// an application run into the IO500 box.
func BenchmarkBoundingBoxMapping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		box, placement, err := experiments.BoundingBoxMapping(uint64(17 + i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFigure(b, "bboxmap", fmt.Sprintf(
				"Bounding box: write [%.3f, %.3f] GiB/s, read [%.3f, %.3f] GiB/s\nplacement: %s",
				box.WriteLow, box.WriteHigh, box.ReadLow, box.ReadHigh, placement))
		}
	}
}

// --- Ablation 1: kdb storage — WAL append vs snapshot compaction -------

func benchKdbFill(b *testing.B, db *kdb.DB) {
	b.Helper()
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS r (id INTEGER PRIMARY KEY, bw REAL, op TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec("INSERT INTO r (bw, op) VALUES (?, ?)", float64(i), "write"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKdbWALAppend measures insert throughput with every
// mutation appended to the log (the default durability path).
func BenchmarkAblationKdbWALAppend(b *testing.B) {
	b.ReportAllocs()
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := kdb.Open(filepath.Join(dir, fmt.Sprintf("wal%d.db", i)))
		if err != nil {
			b.Fatal(err)
		}
		benchKdbFill(b, db)
		db.Close()
	}
}

// BenchmarkAblationKdbCompact measures the same insert load followed by a
// snapshot rewrite — the compaction strategy trades write amplification
// now for fast reopen later.
func BenchmarkAblationKdbCompact(b *testing.B) {
	b.ReportAllocs()
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := kdb.Open(filepath.Join(dir, fmt.Sprintf("cmp%d.db", i)))
		if err != nil {
			b.Fatal(err)
		}
		benchKdbFill(b, db)
		if err := db.Compact(); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkReplicationThroughput measures WAL-shipping replication under
// campaign-style ingest: one served primary, two streaming followers, and
// batches of 100 inserts per iteration (the scheduler's transaction-sized
// unit). It reports primary ingest throughput, the replication lag in
// records the moment ingest stops, and how long the followers take to
// drain to full convergence.
func BenchmarkReplicationThroughput(b *testing.B) {
	b.ReportAllocs()
	primary, err := kdb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	srv := &kdb.Server{DB: primary, HeartbeatInterval: 50 * time.Millisecond}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if _, err := primary.Exec("CREATE TABLE bench (id INTEGER PRIMARY KEY, n INTEGER, s TEXT)"); err != nil {
		b.Fatal(err)
	}
	var followers []*repl.Follower
	for i := 0; i < 2; i++ {
		fdb, err := kdb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		defer fdb.Close()
		f := repl.NewFollower(fdb, l.Addr().String(), repl.Options{
			HeartbeatTimeout: time.Second,
			RetryMin:         5 * time.Millisecond,
		})
		f.Start(context.Background())
		defer f.Stop()
		followers = append(followers, f)
	}
	waitConverged := func() {
		for _, f := range followers {
			for f.DB().LSN() < primary.LSN() {
				time.Sleep(time.Millisecond)
			}
		}
	}
	waitConverged()
	const batch = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := primary.Batch(func(exec kdb.ExecFunc) error {
			for j := 0; j < batch; j++ {
				if _, err := exec("INSERT INTO bench (n, s) VALUES (?, ?)",
					int64(i*batch+j), "payload-0123456789abcdef"); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	ingestSecs := b.Elapsed().Seconds()
	var lag int64
	for _, f := range followers {
		if l := primary.LSN() - f.DB().LSN(); l > lag {
			lag = l
		}
	}
	drainStart := time.Now()
	waitConverged()
	b.StopTimer()
	rows := float64(b.N * batch)
	b.ReportMetric(rows/ingestSecs, "rows/s")
	b.ReportMetric(float64(lag), "lag_records")
	b.ReportMetric(float64(time.Since(drainStart).Milliseconds()), "drain_ms")
}

// BenchmarkKdbQuery measures a representative explorer point query over a
// populated store.
func BenchmarkKdbQuery(b *testing.B) {
	b.ReportAllocs()
	db, err := kdb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	benchKdbFill(b, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query("SELECT id, bw FROM r WHERE bw > ? AND op = ? ORDER BY bw DESC LIMIT 10", 50.0, "write")
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() != 10 {
			b.Fatalf("rows = %d", rows.Len())
		}
	}
}

// benchKdbLookupDB builds a 10k-row store with one indexed and one
// unindexed copy of the same lookup key column.
func benchKdbLookupDB(b *testing.B) *kdb.DB {
	b.Helper()
	db, err := kdb.Open("")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE lk (id INTEGER PRIMARY KEY, ik INTEGER, sk INTEGER, bw REAL)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX idx_lk_ik ON lk (ik)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec("INSERT INTO lk (ik, sk, bw) VALUES (?, ?, ?)", i, i, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkKDBIndexedLookup measures an equality SELECT served by a hash
// index over 10k rows; BenchmarkKDBFullScanLookup is the same query against
// an unindexed copy of the key column — the paper-style ablation for the
// explorer's point-lookup path.
func BenchmarkKDBIndexedLookup(b *testing.B) {
	b.ReportAllocs()
	db := benchKdbLookupDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := db.QueryRow("SELECT bw FROM lk WHERE ik = ?", i%10000)
		if err != nil || row[0] != float64(i%10000) {
			b.Fatalf("row = %v, %v", row, err)
		}
	}
}

func BenchmarkKDBFullScanLookup(b *testing.B) {
	b.ReportAllocs()
	db := benchKdbLookupDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := db.QueryRow("SELECT bw FROM lk WHERE sk = ?", i%10000)
		if err != nil || row[0] != float64(i%10000) {
			b.Fatalf("row = %v, %v", row, err)
		}
	}
}

// --- Ablation 2: simulation granularity --------------------------------

// BenchmarkAblationSimClosedForm times the production closed-form phase
// model (one analytic evaluation per phase).
func BenchmarkAblationSimClosedForm(b *testing.B) {
	b.ReportAllocs()
	m := cluster.FuchsCSC()
	req := cluster.IORequest{
		Op: cluster.Write, API: cluster.MPIIO,
		Tasks: 80, TasksPerNode: 20,
		TransferSize: 2 * units.MiB, BlockSize: 4 * units.MiB, Segments: 40,
		FilePerProc: true, ReorderTasks: true, Fsync: true,
	}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(req, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimEventLoop times a naive per-transfer event loop over
// the same phase (6400 transfer completions), quantifying what the
// closed-form model saves. The loop reproduces the same aggregate shape:
// per-rank transfers serialized against a shared bandwidth pool.
func BenchmarkAblationSimEventLoop(b *testing.B) {
	b.ReportAllocs()
	src := rng.New(1)
	const (
		tasks      = 80
		opsPerRank = 80 // segments × block/transfer
		xferMiB    = 2.0
		rankMiBps  = 3000.0 / tasks
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := make([]float64, tasks)
		for op := 0; op < opsPerRank; op++ {
			for r := 0; r < tasks; r++ {
				dur := xferMiB / rankMiBps * src.Perturb(1, 0.05)
				clock[r] += dur
			}
		}
		maxT := 0.0
		for _, t := range clock {
			if t > maxT {
				maxT = t
			}
		}
		if maxT <= 0 {
			b.Fatal("event loop produced no time")
		}
	}
}

// --- Ablation 3: extractor strategy — streaming parser vs whole-file regex

func bigIOROutput(b *testing.B) []byte {
	b.Helper()
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 50 -o /scratch/big -k")
	if err != nil {
		b.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	run, err := (&ior.Runner{Machine: cluster.FuchsCSC(), Seed: 9}).Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ior.WriteOutput(&buf, run); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkAblationExtractStreaming times the production line-oriented
// extractor on a 50-iteration IOR output.
func BenchmarkAblationExtractStreaming(b *testing.B) {
	b.ReportAllocs()
	data := bigIOROutput(b)
	reg := extract.NewRegistry()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := reg.Extract(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(ex.Object.Results) != 100 {
			b.Fatalf("results = %d", len(ex.Object.Results))
		}
	}
}

// BenchmarkAblationExtractRegex times the whole-file-regex alternative the
// design rejected: one multiline regex pass pulling the same access lines.
func BenchmarkAblationExtractRegex(b *testing.B) {
	b.ReportAllocs()
	data := bigIOROutput(b)
	re := regexp.MustCompile(`(?m)^(write|read)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+\.\d+)\s+(\d+)\s*$`)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches := re.FindAllSubmatch(data, -1)
		if len(matches) != 100 {
			b.Fatalf("matches = %d", len(matches))
		}
		// Regex only locates lines; values still need conversion.
		for _, m := range matches {
			if _, err := strconv.ParseFloat(string(m[2]), 64); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation 4: knowledge serialization — JSON vs gob ------------------

func benchObject(b *testing.B) *knowledge.Object {
	b.Helper()
	r, err := experiments.Fig5(23)
	if err != nil {
		b.Fatal(err)
	}
	o := &knowledge.Object{
		Source:  knowledge.SourceIOR,
		Command: experiments.PaperCommand,
		Pattern: map[string]string{"api": "MPIIO", "tasks": "80"},
	}
	for _, row := range r.Rows {
		o.Results = append(o.Results,
			knowledge.Result{Operation: "write", Iteration: row.Iteration, BwMiBps: row.WriteMiB, OpsPerSec: row.WriteOps},
			knowledge.Result{Operation: "read", Iteration: row.Iteration, BwMiBps: row.ReadMiB, OpsPerSec: row.ReadOps})
	}
	o.Summaries = []knowledge.Summary{{Operation: "write", MeanMiBps: r.WriteMeanOthers, Iterations: 6}}
	return o
}

// BenchmarkAblationSerializeJSON times the production JSON interchange.
func BenchmarkAblationSerializeJSON(b *testing.B) {
	b.ReportAllocs()
	o := benchObject(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(o)
		if err != nil {
			b.Fatal(err)
		}
		var back knowledge.Object
		if err := json.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSerializeGob times the gob alternative.
func BenchmarkAblationSerializeGob(b *testing.B) {
	b.ReportAllocs()
	o := benchObject(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(o); err != nil {
			b.Fatal(err)
		}
		var back knowledge.Object
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 5: campaign scheduling — serial vs parallel workers, -------
// per-artifact vs batched ingestion.

// benchCampaign runs the full Fig. 3 sweep spec (17 units) through the
// campaign scheduler with the given worker count and ingestion batch size
// against a fresh in-memory store.
func benchCampaign(b *testing.B, workers, batch int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st, err := schema.Open("")
		if err != nil {
			b.Fatal(err)
		}
		sched := &campaign.Scheduler{Store: st, Workers: workers, BatchSize: batch}
		res, err := sched.Run(context.Background(), experiments.Fig3Spec(5))
		if err != nil {
			b.Fatal(err)
		}
		if res.OK != len(res.Runs) || res.Failed != 0 {
			b.Fatalf("ok = %d of %d, failed = %d", res.OK, len(res.Runs), res.Failed)
		}
		st.Close()
	}
}

// BenchmarkCampaignThroughput ablates the scheduler along both axes the
// design motivates: one worker vs one per core, and ingestion one artifact
// at a time vs in batches of 16. The knowledge persisted is byte-identical
// across all four variants (see internal/campaign tests); only wall time
// differs.
func BenchmarkCampaignThroughput(b *testing.B) {
	b.ReportAllocs()
	par := runtime.NumCPU()
	if par < 2 {
		par = 2 // keep the parallel axis distinct on single-core machines
	}
	b.Run("workers=1/batch=1", func(b *testing.B) { benchCampaign(b, 1, 1) })
	b.Run("workers=1/batch=16", func(b *testing.B) { benchCampaign(b, 1, 16) })
	b.Run(fmt.Sprintf("workers=%d/batch=1", par), func(b *testing.B) { benchCampaign(b, par, 1) })
	b.Run(fmt.Sprintf("workers=%d/batch=16", par), func(b *testing.B) { benchCampaign(b, par, 16) })
}

// BenchmarkSimulatePhase is the core hot path: one simulated I/O phase.
func BenchmarkSimulatePhase(b *testing.B) {
	b.ReportAllocs()
	m := cluster.FuchsCSC()
	req := cluster.IORequest{
		Op: cluster.Read, API: cluster.POSIX,
		Tasks: 40, TasksPerNode: 20,
		TransferSize: 2 * units.MiB, BlockSize: 512 * units.MiB, Segments: 1,
		FilePerProc: true, ReorderTasks: true,
	}
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(req, src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks ----------------------------------------------

// BenchmarkDarshanRoundTrip times encoding+decoding an 80-rank Darshan log.
func BenchmarkDarshanRoundTrip(b *testing.B) {
	b.ReportAllocs()
	cfg, err := ior.ParseCommandLine(experiments.PaperCommand)
	if err != nil {
		b.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	run, err := (&ior.Runner{Machine: cluster.FuchsCSC(), Seed: 3}).Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l := darshan.FromIORRun(run, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := darshan.Marshal(l)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := darshan.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJUBEExpansion times cartesian parameter expansion (4 parameters
// x 5 values = 625 combinations).
func BenchmarkJUBEExpansion(b *testing.B) {
	b.ReportAllocs()
	bm := &jube.Benchmark{
		ParameterSets: []jube.ParameterSet{{
			Name: "p",
			Parameters: []jube.Parameter{
				{Name: "a", Value: "1,2,3,4,5"},
				{Name: "b2", Value: "1,2,3,4,5"},
				{Name: "c", Value: "1,2,3,4,5"},
				{Name: "d", Value: "1,2,3,4,5"},
			},
		}},
		Steps: []jube.Step{{Name: "s", Use: []string{"p"}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combos, err := bm.ExpandStep(&bm.Steps[0])
		if err != nil {
			b.Fatal(err)
		}
		if len(combos) != 625 {
			b.Fatalf("combos = %d", len(combos))
		}
	}
}

// BenchmarkChartBoxSVG times rendering the Fig. 6 boxplot chart.
func BenchmarkChartBoxSVG(b *testing.B) {
	b.ReportAllocs()
	var boxes []stats.Box
	var labels []string
	src := rng.New(5)
	for i := 0; i < 4; i++ {
		var vals []float64
		for j := 0; j < 50; j++ {
			vals = append(vals, src.Normal(1000, 100))
		}
		box, err := stats.BoxPlot(vals)
		if err != nil {
			b.Fatal(err)
		}
		boxes = append(boxes, box)
		labels = append(labels, fmt.Sprintf("phase%d", i))
	}
	c := chart.BoxChart{Title: "bench", YLabel: "GiB/s", Labels: labels, Boxes: boxes}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SVG(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorCollect times a 24-hour 1-minute-interval monitoring
// collection over 50 accounting jobs.
func BenchmarkMonitorCollect(b *testing.B) {
	b.ReportAllocs()
	from := referenceDay()
	to := from.Add(24 * time.Hour)
	src := rng.New(7)
	jobs, err := slurm.Synthesize(slurm.SynthesizeConfig{
		Jobs: 50, From: from, To: to, HeavyWriterEvery: 10,
	}, src)
	if err != nil {
		b.Fatal(err)
	}
	c := monitor.Collector{Machine: cluster.FuchsCSC()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := c.Collect(jobs, from, to, time.Minute, src.Fork())
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Samples) != 24*60+1 {
			b.Fatalf("samples = %d", len(s.Samples))
		}
	}
}

func referenceDay() time.Time {
	return time.Date(2022, 7, 7, 0, 0, 0, 0, time.UTC)
}

// BenchmarkFullCycleIteration times one complete cycle turn: generate,
// extract, enrich, persist.
func BenchmarkFullCycleIteration(b *testing.B) {
	b.ReportAllocs()
	cfg, err := ior.ParseCommandLine(experiments.PaperCommand)
	if err != nil {
		b.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.New(cluster.FuchsCSC(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(core.IORGenerator{Config: cfg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCTunerProfile times building the full default autotuning grid
// (24 configs × 2 pattern classes × 2 reps = 96 simulated runs).
func BenchmarkSCTunerProfile(b *testing.B) {
	b.ReportAllocs()
	m := cluster.FuchsCSC()
	space := sctuner.DefaultSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sctuner.Build(m, space, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDF5LiteCodec times encoding+decoding a container with a 1 MiB
// payload dataset.
func BenchmarkHDF5LiteCodec(b *testing.B) {
	b.ReportAllocs()
	f := hdf5lite.NewFile()
	g := f.Root.CreateGroup("checkpoint")
	ds, err := g.CreateDataset("field", []int64{1024, 1024}, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := ds.Alloc()
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := hdf5lite.Marshal(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hdf5lite.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead measures the cost of the observability layer
// on kdb's instrumented point-query path (plan cache, index lookup, lock
// wait, and latency histograms all fire per query): the same workload with
// the process-wide registry enabled vs disabled. Target: < 5% throughput
// cost enabled.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B) {
		b.Helper()
		b.ReportAllocs()
		db := benchKdbLookupDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query("SELECT bw FROM lk WHERE ik = ?", i%10000)
			if err != nil {
				b.Fatal(err)
			}
			if rows.Len() != 1 {
				b.Fatalf("rows = %d", rows.Len())
			}
		}
	}
	b.Run("enabled", run)
	b.Run("disabled", func(b *testing.B) {
		telemetry.Default().SetEnabled(false)
		defer telemetry.Default().SetEnabled(true)
		run(b)
	})
}

// BenchmarkTelemetryRecord times the raw metric hot paths in isolation:
// one counter add, one gauge add, and one histogram observation per op.
func BenchmarkTelemetryRecord(b *testing.B) {
	b.ReportAllocs()
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_total")
	g := reg.Gauge("bench_gauge")
	h := reg.Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		h.Observe(float64(i%1000) * 1e-6)
	}
}
