package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testConfig = `<jube>
  <benchmark name="sweep" outpath="bench_runs">
    <parameterset name="p">
      <parameter name="transfersize">1m,2m</parameter>
    </parameterset>
    <step name="run">
      <use>p</use>
      <do>ior -a mpiio -b 4m -t $transfersize -s 4 -N 40 -F -C -i 2 -o /scratch/sweep</do>
    </step>
    <analyser name="a">
      <analyse step="run">
        <pattern name="max_write" type="float">Max Write: $jube_pat_fp MiB/sec</pattern>
      </analyse>
    </analyser>
    <result>
      <table name="results">
        <column>transfersize</column>
        <column>max_write</column>
      </table>
    </result>
  </benchmark>
</jube>`

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestRunConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "config.xml")
	if err := os.WriteFile(cfgPath, []byte(testConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"--seed", "5", "--basedir", dir, cfgPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`benchmark "sweep"`, "2 workpackages", `table "results"`, "transfersize", "max_write"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
	// Workspace materialized on disk.
	files, err := filepath.Glob(filepath.Join(dir, "bench_runs", "000000", "*", "work", "stdout"))
	if err != nil || len(files) != 2 {
		t.Errorf("workspace stdout files = %v (%v)", files, err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run(nil) }); err == nil {
		t.Error("no config should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"/does/not/exist.xml"}) }); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte("<jube></jube>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{bad}) }); err == nil {
		t.Error("empty benchmark config should fail")
	}
}
