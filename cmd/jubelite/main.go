// Command jubelite runs a JUBE-style XML benchmark configuration against
// the modelled cluster, creating a workspace of per-workpackage output
// directories and printing the configured result tables — the generation
// phase of the knowledge cycle in stand-alone form.
//
//	jubelite [--seed N] [--basedir DIR] config.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/jube"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jubelite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jubelite", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	baseDir := fs.String("basedir", ".", "directory hosting the JUBE workspace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: jubelite [flags] config.xml")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := jube.ParseConfig(f)
	if err != nil {
		return err
	}
	m := cluster.FuchsCSC()
	runner := &jube.Runner{BaseDir: *baseDir, Exec: core.Dispatch(m, *seed)}
	for i := range cfg.Benchmarks {
		b := &cfg.Benchmarks[i]
		fmt.Printf("benchmark %q\n", b.Name)
		res, err := runner.Run(b)
		if err != nil {
			return err
		}
		fmt.Printf("workspace: %s (%d workpackages)\n", res.RunDir, len(res.Workpackages))
		for _, tbl := range b.Result.Tables {
			text, err := res.Table(tbl.Name)
			if err != nil {
				return err
			}
			fmt.Printf("\ntable %q:\n%s", tbl.Name, text)
		}
	}
	return nil
}
