package main

import (
	"testing"

	"repro/internal/schema"
)

func TestSeedDemo(t *testing.T) {
	store, err := schema.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := seedDemo(store); err != nil {
		t.Fatal(err)
	}
	objs, err := store.ListObjects()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Errorf("demo knowledge objects = %d, want 2", len(objs))
	}
	io5, err := store.ListIO500()
	if err != nil {
		t.Fatal(err)
	}
	if len(io5) != 5 {
		t.Errorf("demo io500 runs = %d, want 5", len(io5))
	}
	// The anomalous demo run is detectable.
	o, err := store.LoadObject(2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := o.SummaryFor("write")
	if w.MinMiBps > w.MeanMiBps*0.7 {
		t.Errorf("demo anomaly missing: min %.0f vs mean %.0f", w.MinMiBps, w.MeanMiBps)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"--nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}
