// Command explorer serves the web-based knowledge explorer (phase IV of
// the knowledge cycle) over a knowledge database.
//
//	explorer [--db knowledge.db] [--addr :8080] [--replica ADDR]... [--demo] [--pprof]
//
// --demo seeds an in-memory store with the paper's two example scenarios
// (the Fig. 5 iteration-variance run and three IO500 runs with a broken
// node) so the explorer has something to show out of the box.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/explorer"
	"repro/internal/io500"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/repl"
	"repro/internal/schema"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "explorer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("explorer", flag.ContinueOnError)
	db := fs.String("db", "", "knowledge database file (empty = in-memory)")
	addr := fs.String("addr", ":8080", "listen address")
	demo := fs.Bool("demo", false, "seed demo knowledge")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof endpoints")
	var replicas replicaFlags
	fs.Var(&replicas, "replica", "kdb:// address of a read replica (repeatable); reads are routed to caught-up replicas")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, health, err := openStore(*db, replicas)
	if err != nil {
		return err
	}
	defer store.Close()
	if *demo {
		if err := seedDemo(store); err != nil {
			return err
		}
	}
	srv := explorer.New(store)
	srv.Health = health
	if *pprofOn {
		srv.EnablePprof()
	}
	fmt.Printf("knowledge explorer listening on %s\n", *addr)
	return http.ListenAndServe(*addr, srv)
}

// replicaFlags collects repeatable --replica flags.
type replicaFlags []string

func (r *replicaFlags) String() string { return strings.Join(*r, ",") }

func (r *replicaFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// openStore opens the knowledge store, fronting it with a read-your-writes
// router when replica addresses are given so page loads spread across the
// replicas while uploads still land on the primary.
func openStore(db string, replicas []string) (*schema.Store, func() repl.Status, error) {
	if len(replicas) == 0 {
		store, err := schema.Open(db)
		return store, nil, err
	}
	var primary kdb.Conn
	var err error
	if strings.HasPrefix(db, "kdb://") {
		primary, err = kdb.Dial(db)
	} else {
		primary, err = kdb.Open(db)
	}
	if err != nil {
		return nil, nil, err
	}
	reps := make([]repl.Replica, 0, len(replicas))
	for _, addr := range replicas {
		r, err := kdb.Dial(addr)
		if err != nil {
			primary.Close()
			return nil, nil, fmt.Errorf("replica %s: %w", addr, err)
		}
		reps = append(reps, r)
	}
	router := repl.NewRouter(primary, reps...)
	store, err := schema.Wrap(router)
	if err != nil {
		return nil, nil, err
	}
	return store, router.Health, nil
}

// seedDemo loads the paper's two §V-E scenarios into the store.
func seedDemo(store *schema.Store) error {
	c, err := core.New(cluster.FuchsCSC(), 7)
	if err != nil {
		return err
	}
	c.Store = store
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k")
	if err != nil {
		return err
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	// Example I baseline plus the Fig. 5 anomalous run.
	if _, err := c.Run(core.IORGenerator{Config: cfg}); err != nil {
		return err
	}
	anomalous := core.IORGenerator{
		Config: cfg,
		BeforeIteration: func(iter int, m *cluster.Machine) {
			if iter == 1 {
				m.WriteCongestion = 0.44
			} else {
				m.ClearFaults()
			}
		},
	}
	if _, err := c.Run(anomalous); err != nil {
		return err
	}
	// Example II: IO500 runs with a broken node on ior-easy-read.
	for seed := uint64(1); seed <= 5; seed++ {
		c.Seed = seed
		g := core.IO500Generator{
			Config: io500.Default(),
			BeforePhase: func(phase string, m *cluster.Machine) {
				m.ClearFaults()
				if phase == io500.IorEasyRead {
					m.SetNodeFactor(1, 1, 0.35)
				}
			},
		}
		if _, err := c.Run(g); err != nil {
			return err
		}
	}
	return nil
}
