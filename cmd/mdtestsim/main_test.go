package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestRunEasy(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"--seed", "2", "-u", "-n", "500"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mdtest-3.3.0 was launched with 40 total task(s) on 2 node(s)",
		"SUMMARY rate:",
		"File creation",
		"-u",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestHardSlowerThanEasy(t *testing.T) {
	extract := func(out string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "File creation") {
				f := strings.Fields(line)
				var v float64
				if len(f) >= 6 {
					if _, err := fmt.Sscanf(f[3], "%f", &v); err == nil {
						return v
					}
				}
			}
		}
		return 0
	}
	easyOut, err := capture(t, func() error { return run([]string{"--seed", "3", "-u"}) })
	if err != nil {
		t.Fatal(err)
	}
	hardOut, err := capture(t, func() error { return run([]string{"--seed", "3", "-w", "3901"}) })
	if err != nil {
		t.Fatal(err)
	}
	easy, hard := extract(easyOut), extract(hardOut)
	if easy == 0 || hard == 0 {
		t.Fatalf("could not extract rates: %v / %v", easy, hard)
	}
	if hard >= easy {
		t.Errorf("hard create (%.0f) should be slower than easy (%.0f)", hard, easy)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{{"-n", "0"}, {"--tasks", "-1"}, {"--badflag"}} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
