// Command mdtestsim runs the mdtest metadata benchmark simulator against
// the modelled FUCHS-CSC cluster and prints mdtest-3.x output.
//
//	mdtestsim [--seed N] [--tasks N] [--tpn N] [-n FILES] [-u] [-w BYTES]
//	          [-e BYTES] [-i ITERATIONS] [-d DIR]
//
// -u gives every task a unique working directory (mdtest-easy); without
// it all tasks share one directory (mdtest-hard-style contention).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/mdtest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdtestsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdtestsim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	tasks := fs.Int("tasks", 40, "MPI ranks")
	tpn := fs.Int("tpn", 20, "ranks per node")
	files := fs.Int("n", 1000, "items per task")
	unique := fs.Bool("u", false, "unique working directory per task")
	writeBytes := fs.Int64("w", 0, "bytes written per created file")
	readBytes := fs.Int64("e", 0, "bytes read back per file")
	iters := fs.Int("i", 1, "iterations")
	dir := fs.String("d", "/scratch/mdtest", "working directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := mdtest.Config{
		NumFiles:     *files,
		Tasks:        *tasks,
		TasksPerNode: *tpn,
		UniqueDir:    *unique,
		WriteBytes:   *writeBytes,
		ReadBytes:    *readBytes,
		Iterations:   *iters,
		Dir:          *dir,
	}
	r := &mdtest.Runner{Machine: cluster.FuchsCSC(), Seed: *seed}
	runResult, err := r.Run(cfg)
	if err != nil {
		return err
	}
	return mdtest.WriteOutput(os.Stdout, runResult)
}
