// Command haccsim runs the HACC-IO checkpoint/restart simulator against
// the modelled FUCHS-CSC cluster.
//
//	haccsim [--seed N] [--tasks N] [--tpn N] [--particles N]
//	        [--api posix|mpiio] [--mode ssf|fpp|fpg] [--group N] [--out PATH]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/haccio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "haccsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("haccsim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	tasks := fs.Int("tasks", 40, "MPI ranks")
	tpn := fs.Int("tpn", 20, "ranks per node")
	particles := fs.Int("particles", 2_000_000, "particles per rank")
	api := fs.String("api", "mpiio", "posix or mpiio")
	mode := fs.String("mode", "ssf", "ssf (single-shared-file), fpp (file-per-process), fpg (file-per-group)")
	group := fs.Int("group", 20, "ranks per file for fpg")
	out := fs.String("out", "/scratch/hacc/restart", "output file path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := haccio.Default()
	cfg.Tasks = *tasks
	cfg.TasksPerNode = *tpn
	cfg.ParticlesPerRank = *particles
	cfg.GroupSize = *group
	cfg.OutputFile = *out
	switch strings.ToLower(*api) {
	case "posix":
		cfg.API = cluster.POSIX
	case "mpiio":
		cfg.API = cluster.MPIIO
	default:
		return fmt.Errorf("--api: want posix or mpiio, got %q", *api)
	}
	switch strings.ToLower(*mode) {
	case "ssf":
		cfg.Mode = haccio.SingleSharedFile
	case "fpp":
		cfg.Mode = haccio.FilePerProcess
	case "fpg":
		cfg.Mode = haccio.FilePerGroup
	default:
		return fmt.Errorf("--mode: want ssf, fpp or fpg, got %q", *mode)
	}
	r := &haccio.Runner{Machine: cluster.FuchsCSC(), Seed: *seed}
	runResult, err := r.Run(cfg)
	if err != nil {
		return err
	}
	return haccio.WriteOutput(os.Stdout, runResult)
}
