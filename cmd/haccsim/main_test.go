package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestRunDefault(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"--seed", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HACC_IO-1.0", "Checkpoint :", "Restart    :", "single-shared-file"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"ssf", "fpp", "fpg"} {
		if _, err := capture(t, func() error { return run([]string{"--mode", mode}) }); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	out, err := capture(t, func() error { return run([]string{"--api", "posix", "--mode", "fpp"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "API        : POSIX") || !strings.Contains(out, "file-per-process") {
		t.Errorf("posix fpp output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"--api", "hdf5"},
		{"--mode", "weird"},
		{"--tasks", "x"},
		{"--particles", "-5"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
