// Command io500sim runs the IO500 benchmark simulator against the modelled
// FUCHS-CSC cluster and prints an IO500 result summary.
//
//	io500sim [--seed N] [--tasks N] [--tasks-per-node N]
//	         [--easy-block SIZE] [--hard-segments N]
//	         [--easy-files N] [--hard-files N]
//	         [--break-node ID:READFACTOR]
//
// --break-node degrades one node's read path for the whole run,
// reproducing the paper's Fig. 6 broken-node scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/io500"
	"repro/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "io500sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("io500sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	tasks := fs.Int("tasks", 40, "MPI ranks")
	tpn := fs.Int("tasks-per-node", 20, "ranks per node")
	easyBlock := fs.String("easy-block", "512m", "ior-easy per-process volume")
	hardSegs := fs.Int("hard-segments", 6000, "ior-hard segments per process")
	easyFiles := fs.Int("easy-files", 10000, "mdtest-easy files per process")
	hardFiles := fs.Int("hard-files", 2000, "mdtest-hard files per process")
	breakNode := fs.String("break-node", "", "degrade a node's read path, e.g. 1:0.35")
	if err := fs.Parse(args); err != nil {
		return err
	}
	block, err := units.ParseSize(*easyBlock)
	if err != nil {
		return fmt.Errorf("--easy-block: %v", err)
	}
	cfg := io500.Default()
	cfg.Tasks = *tasks
	cfg.TasksPerNode = *tpn
	cfg.EasyBlockPerProc = block
	cfg.HardSegments = *hardSegs
	cfg.EasyFilesPerProc = *easyFiles
	cfg.HardFilesPerProc = *hardFiles

	m := cluster.FuchsCSC()
	if *breakNode != "" {
		var id int
		var factor float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(*breakNode, ":", " "), "%d %f", &id, &factor); err != nil {
			return fmt.Errorf("--break-node: want ID:FACTOR, got %q", *breakNode)
		}
		m.SetNodeFactor(id, 1, factor)
	}
	r := &io500.Runner{Machine: m, Seed: *seed}
	runResult, err := r.Run(cfg)
	if err != nil {
		return err
	}
	return io500.WriteOutput(os.Stdout, runResult)
}
