package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestRunDefault(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"--seed", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IO500 version", "[RESULT]", "ior-easy-write", "[SCORE ] Bandwidth"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBrokenNode(t *testing.T) {
	healthy, err := capture(t, func() error { return run([]string{"--seed", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	broken, err := capture(t, func() error { return run([]string{"--seed", "3", "--break-node", "1:0.35"}) })
	if err != nil {
		t.Fatal(err)
	}
	ext := func(out string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "ior-easy-read") {
				var v float64
				f := strings.Fields(line)
				if len(f) >= 3 {
					if _, err := fmt.Sscanf(f[2], "%f", &v); err == nil {
						return v
					}
				}
			}
		}
		return 0
	}
	h, b := ext(healthy), ext(broken)
	if h == 0 || b == 0 {
		t.Fatalf("could not extract easy-read: %v / %v", h, b)
	}
	if b > h*0.65 {
		t.Errorf("broken node should depress easy read: %.3f vs %.3f", b, h)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"--easy-block", "zzz"},
		{"--break-node", "notvalid"},
		{"--tasks", "x"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
