package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/kdb"
)

func TestParseServeDBArgs(t *testing.T) {
	cfg, err := parseServeDBArgs([]string{
		"--db", "r.kdb", "--addr", "127.0.0.1:7171",
		"--replica-of", "kdb://127.0.0.1:7070", "--advertise", "127.0.0.1:7171",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.replicaOf != "kdb://127.0.0.1:7070" || cfg.advertise != "127.0.0.1:7171" {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := parseServeDBArgs([]string{"--pprof"}); err == nil ||
		!strings.Contains(err.Error(), "--metrics-addr") {
		t.Errorf("pprof without metrics-addr = %v, want error", err)
	}
	if _, err := parseServeDBArgs([]string{"--db", "kdb://host:1"}); err == nil ||
		!strings.Contains(err.Error(), "local file") {
		t.Errorf("remote --db = %v, want error", err)
	}
}

// reservePort grabs a free loopback address and releases it, so a test
// can start a server there later.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeDBReplicaConnectRetry starts the replica BEFORE any primary
// exists: the follower must keep retrying, then bootstrap and serve reads
// once the primary comes up, while rejecting writes throughout.
func TestServeDBReplicaConnectRetry(t *testing.T) {
	dir := t.TempDir()
	primaryAddr := reservePort(t)
	replicaAddr := reservePort(t)

	cfg, err := parseServeDBArgs([]string{
		"--db", dir + "/replica.kdb", "--addr", replicaAddr,
		"--replica-of", "kdb://" + primaryAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServeDB(ctx, cfg) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("runServeDB: %v", err)
		}
	}()

	// Let the follower burn a few connection attempts against nothing.
	time.Sleep(150 * time.Millisecond)

	primary, err := kdb.Open(dir + "/primary.kdb")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv := &kdb.Server{DB: primary, HeartbeatInterval: 50 * time.Millisecond}
	l, err := srv.Listen(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()
	if _, err := primary.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Exec("INSERT INTO kv (v) VALUES (?)", "hello"); err != nil {
		t.Fatal(err)
	}

	r, err := kdb.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := r.Status()
		if err == nil && st.LSN >= primary.LSN() {
			if st.Role != "replica" {
				t.Fatalf("role = %q, want replica", st.Role)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: status=%+v err=%v", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	row, err := r.QueryRow("SELECT v FROM kv WHERE id = ?", int64(1))
	if err != nil || len(row) != 1 || row[0] != "hello" {
		t.Fatalf("replica read = %v, %v", row, err)
	}
	if _, err := r.Exec("INSERT INTO kv (v) VALUES (?)", "nope"); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica accepted a write: %v", err)
	}
}
