package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestGenerateTraceFlag(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "knowledge.db")
	tracePath := filepath.Join(dir, "run.trace.json")
	out, err := capture(t, func() error {
		return run([]string{"generate", "--db", db, "--trace", tracePath,
			"ior", "-a", "posix", "-b", "1m", "-t", "256k", "-s", "2", "-i", "2", "-o", "/scratch/t"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace written to "+tracePath) {
		t.Errorf("output missing trace notice:\n%s", out)
	}
	// The printed flame tree shows the cycle phases.
	for _, phase := range []string{"generation", "extraction", "persistence"} {
		if !strings.Contains(out, phase) {
			t.Errorf("trace tree missing phase %q:\n%s", phase, out)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var e telemetry.SpanExport
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("trace file is not a span export: %v", err)
	}
	if e.Name != "iokc generate" || len(e.Children) != 3 {
		t.Errorf("span export = %+v", e)
	}
}

func TestCampaignTraceFlag(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "knowledge.db")
	tracePath := filepath.Join(dir, "campaign.trace.json")
	out, err := capture(t, func() error {
		return run([]string{"campaign", "--db", db, "--workers", "2", "--trace", tracePath,
			"ior -a posix -b 1m -t 256k -s 2 -i 1 -o /scratch/a",
			"ior -a posix -b 1m -t 512k -s 2 -i 1 -o /scratch/b"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unit 0") || !strings.Contains(out, "unit 1") {
		t.Errorf("campaign trace tree missing unit spans:\n%s", out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var e telemetry.SpanExport
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("trace file is not a span export: %v", err)
	}
	if e.Name != "iokc campaign" || len(e.Children) != 1 {
		t.Fatalf("span export root = %+v", e)
	}
	if !strings.HasPrefix(e.Children[0].Name, "campaign ") {
		t.Errorf("campaign span = %+v", e.Children[0])
	}
}
