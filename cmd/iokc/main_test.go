package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/darshan"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/siox"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

// TestFullCLIWorkflow drives the whole cycle through the CLI against one
// shared on-disk knowledge base.
func TestFullCLIWorkflow(t *testing.T) {
	db := filepath.Join(t.TempDir(), "knowledge.db")

	// generate: paper IOR pattern.
	out, err := capture(t, func() error {
		return run([]string{"generate", "--db", db, "--seed", "7",
			"ior", "-a", "mpiio", "-b", "4m", "-t", "2m", "-s", "40",
			"-N", "80", "-F", "-C", "-e", "-i", "6", "-o", "/scratch/t", "-k"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored knowledge object #1") {
		t.Errorf("generate output:\n%s", out)
	}

	// generate: io500 run.
	out, err = capture(t, func() error {
		return run([]string{"generate", "--db", db, "--seed", "8", "io500"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored IO500 knowledge #1") {
		t.Errorf("io500 generate output:\n%s", out)
	}

	// list shows both.
	out, err = capture(t, func() error { return run([]string{"list", "--db", db}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 knowledge object(s):") || !strings.Contains(out, "1 IO500 run(s):") {
		t.Errorf("list output:\n%s", out)
	}

	// show emits JSON.
	out, err = capture(t, func() error { return run([]string{"show", "--db", db, "--id", "1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"source": "ior"`) {
		t.Errorf("show output:\n%s", out)
	}

	// analyze runs.
	out, err = capture(t, func() error { return run([]string{"analyze", "--db", db, "--id", "1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "anomal") {
		t.Errorf("analyze output:\n%s", out)
	}

	// recommend runs.
	if _, err := capture(t, func() error { return run([]string{"recommend", "--db", db, "--id", "1"}) }); err != nil {
		t.Fatal(err)
	}

	// configure creates a new command.
	out, err = capture(t, func() error {
		return run([]string{"configure", "--db", db, "--id", "1", "-t", "4m", "-i", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-t 4m") || !strings.Contains(out, "-i 3") {
		t.Errorf("configure output:\n%s", out)
	}
}

func TestJubeSubcommand(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "k.db")
	cfgPath := filepath.Join(dir, "cfg.xml")
	cfg := `<jube><benchmark name="b" outpath="runs">
<parameterset name="p"><parameter name="t">1m,2m</parameter></parameterset>
<step name="run"><use>p</use><do>ior -a posix -b 4m -t $t -s 2 -N 20 -F -C -o /scratch/x</do></step>
</benchmark></jube>`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"jube", "--db", db, "--config", cfgPath, "--basedir", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 workpackage(s), 2 knowledge object(s)") {
		t.Errorf("jube output:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	db := filepath.Join(t.TempDir(), "k.db")
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"generate", "--db", db},
		{"generate", "--db", db, "weirdtool"},
		{"generate", "--db", db, "ior", "-q"},
		{"jube", "--db", db},
		{"show", "--db", db, "--id", "42"},
		{"analyze", "--db", db, "--id", "42"},
		{"recommend", "--db", db, "--id", "42"},
		{"configure", "--db", db, "--id", "42"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCausesSubcommand(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "k.db")
	// Generate a run (its knowledge carries timestamps from the fixed
	// reference clock 2022-07-07T10:00Z).
	if _, err := capture(t, func() error {
		return run([]string{"generate", "--db", db, "--seed", "7",
			"ior", "-a", "mpiio", "-b", "4m", "-t", "2m", "-s", "40",
			"-N", "80", "-F", "-C", "-e", "-i", "6", "-o", "/scratch/t", "-k"})
	}); err != nil {
		t.Fatal(err)
	}
	// Accounting file with one job covering the whole run window.
	sacct := filepath.Join(dir, "jobs.sacct")
	content := "JobID|JobName|User|Partition|NNodes|NodeList|State|Start|End|AveDiskWrite\n" +
		"901|burst|alice|parallel|8|fuchs[050-057]|COMPLETED|2022-07-07T09:59:00|2022-07-07T10:10:00|8000.00M\n"
	if err := os.WriteFile(sacct, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"causes", "--db", db, "--id", "1", "--sacct", sacct})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The healthy run usually has no strong anomaly; either outcome is a
	// valid report, but the command must succeed and print something.
	if !strings.Contains(out, "anomal") && !strings.Contains(out, "finding:") {
		t.Errorf("causes output:\n%s", out)
	}
	// Missing pieces fail.
	if _, err := capture(t, func() error {
		return run([]string{"causes", "--db", db, "--id", "1"})
	}); err == nil {
		t.Error("missing --sacct should fail")
	}
	if _, err := capture(t, func() error {
		return run([]string{"causes", "--db", db, "--id", "1", "--sacct", "/nope"})
	}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestExtractSubcommand(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "k.db")
	// Produce an IOR output file with the simulator CLI path.
	out, err := capture(t, func() error {
		return run([]string{"generate", "--db", filepath.Join(dir, "tmp.db"), "--seed", "3",
			"ior", "-a", "posix", "-b", "4m", "-t", "2m", "-s", "4", "-N", "20", "-F", "-C", "-o", "/scratch/x"})
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	// Write a recognizable output into a workspace layout.
	wp := filepath.Join(dir, "ws", "000000", "run_wp000000", "work")
	if err := os.MkdirAll(wp, 0o755); err != nil {
		t.Fatal(err)
	}
	iorOut := iorOutputForTest(t)
	if err := os.WriteFile(filepath.Join(wp, "stdout"), iorOut, 0o644); err != nil {
		t.Fatal(err)
	}
	// Single-file extraction.
	single := filepath.Join(dir, "one.out")
	if err := os.WriteFile(single, iorOut, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error {
		return run([]string{"extract", "--db", db, "--path", single})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored knowledge object #1 (ior)") {
		t.Errorf("extract single output:\n%s", out)
	}
	// Workspace scan.
	out, err = capture(t, func() error {
		return run([]string{"extract", "--db", db, "--path", filepath.Join(dir, "ws")})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored knowledge object #2 (ior)") {
		t.Errorf("extract workspace output:\n%s", out)
	}
	// Unknown path fails.
	if _, err := capture(t, func() error {
		return run([]string{"extract", "--db", db, "--path", "/definitely/missing"})
	}); err == nil {
		t.Error("missing path should fail")
	}
}

func iorOutputForTest(t *testing.T) []byte {
	t.Helper()
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 4 -N 40 -F -C -i 2 -o /scratch/t")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TasksPerNode = 20
	run, err := (&ior.Runner{Machine: cluster.FuchsCSC(), Seed: 5}).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ior.WriteOutput(&buf, run); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDXTSubcommand(t *testing.T) {
	dir := t.TempDir()
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 4 -N 40 -F -C -i 1 -o /scratch/t")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TasksPerNode = 20
	runRes, err := (&ior.Runner{Machine: cluster.FuchsCSC(), Seed: 5}).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := darshan.Marshal(darshan.FromIORRun(runRes, 9))
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "job.darshan")
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"dxt", "--log", logPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DXT analysis") {
		t.Errorf("dxt output:\n%s", out)
	}
	if _, err := capture(t, func() error { return run([]string{"dxt"}) }); err == nil {
		t.Error("missing --log should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"dxt", "--log", "/nope"}) }); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.darshan")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"dxt", "--log", bad}) }); err == nil {
		t.Error("corrupt log should fail")
	}
}

func TestTuneSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"tune", "--tasks", "80", "--burst", "8m", "--seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pattern class:", "recommended configuration:", "expected gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("tune output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error {
		return run([]string{"tune", "--burst", "zzz"})
	}); err == nil {
		t.Error("bad burst should fail")
	}
}

// TestRemoteDBWorkflow drives generate/list against a shared knowledge
// database served over the kdb wire protocol — the Fig. 4 "public
// database" path, exercised through the CLI flags.
func TestRemoteDBWorkflow(t *testing.T) {
	dir := t.TempDir()
	backing, err := kdb.Open(filepath.Join(dir, "shared.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	srv := &kdb.Server{DB: backing}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	url := "kdb://" + l.Addr().String()

	out, err := capture(t, func() error {
		return run([]string{"generate", "--db", url, "--seed", "5",
			"ior", "-a", "posix", "-b", "4m", "-t", "2m", "-s", "4", "-N", "20", "-F", "-C", "-o", "/scratch/r"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored knowledge object #1") {
		t.Errorf("remote generate output:\n%s", out)
	}
	// A "different user" lists the shared base.
	out, err = capture(t, func() error { return run([]string{"list", "--db", url}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 knowledge object(s):") {
		t.Errorf("remote list output:\n%s", out)
	}
}

func TestTraceSubcommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "run.siox")
	body, err := capture(t, func() error {
		return run([]string{"trace", "--seed", "4", "--out", out, "--",
			"-a", "mpiio", "-b", "4m", "-t", "2m", "-s", "2", "-N", "20", "-F", "-C", "-i", "1", "-o", "/scratch/t"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SIOX capture:", "slowest causal chain:", "trace written to"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
	// The written trace loads and validates.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := siox.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Activities) == 0 {
		t.Error("trace empty")
	}
	if _, err := capture(t, func() error { return run([]string{"trace", "--", "-q"}) }); err == nil {
		t.Error("bad ior args should fail")
	}
}
