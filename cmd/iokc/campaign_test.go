package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCampaignSubcommandWithCommands(t *testing.T) {
	db := filepath.Join(t.TempDir(), "knowledge.db")
	out, err := capture(t, func() error {
		return run([]string{"campaign", "--db", db, "--seed", "9", "--workers", "2", "--name", "cli-sweep",
			"ior -a posix -b 2m -t 256k -s 2 -i 2 -o /scratch/a",
			"ior -a posix -b 2m -t 1m -s 2 -i 2 -o /scratch/b",
			"io500 --tasks 40 --tasks-per-node 20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`campaign #1 "cli-sweep": 3 unit(s) on 2 worker(s)`,
		"ok 3, failed 0, cancelled 0",
		"2 knowledge object(s), 1 io500 run(s)",
		"self-observation: phase timings stored as knowledge object #3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q:\n%s", want, out)
		}
	}
	// The knowledge landed in the shared database and lists normally —
	// including the campaign's own telemetry object.
	out, err = capture(t, func() error { return run([]string{"list", "--db", db}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 knowledge object(s)") || !strings.Contains(out, "1 IO500 run(s)") {
		t.Errorf("list output:\n%s", out)
	}
	if !strings.Contains(out, "iokc-telemetry run=cli-sweep") {
		t.Errorf("list output missing the self-observation object:\n%s", out)
	}
}

func TestCampaignSubcommandWithJUBEConfig(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "knowledge.db")
	cfg := filepath.Join(dir, "sweep.xml")
	xml := `<jube>
  <benchmark name="sweep" outpath="bench_runs">
    <parameterset name="p">
      <parameter name="transfersize">256k,1m</parameter>
    </parameterset>
    <step name="run">
      <use>p</use>
      <do>ior -a mpiio -b 2m -t $transfersize -s 2 -F -C -i 2 -o /scratch/sweep</do>
    </step>
  </benchmark>
</jube>`
	if err := os.WriteFile(cfg, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"campaign", "--db", db, "--config", cfg, "--workers", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 unit(s)") || !strings.Contains(out, "ok 2, failed 0") {
		t.Errorf("campaign output:\n%s", out)
	}
}

func TestCampaignSubcommandErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"campaign", "--db", filepath.Join(t.TempDir(), "k.db")})
	}); err == nil || !strings.Contains(err.Error(), "need --config") {
		t.Errorf("err = %v", err)
	}
	// An unknown command fails every attempt and surfaces as a failed unit.
	out, err := capture(t, func() error {
		return run([]string{"campaign", "--db", filepath.Join(t.TempDir(), "k.db"),
			"--retries", "2", "nosuchbench -x"})
	})
	if err != nil {
		t.Fatalf("unit failures must not fail the command: %v", err)
	}
	if !strings.Contains(out, "ok 0, failed 1") || !strings.Contains(out, "failed after 2 attempt(s)") {
		t.Errorf("campaign output:\n%s", out)
	}
}
