package main

// Version-control subcommands: iokc log, diff, branch, merge. They
// operate on an embedded knowledge database (versioning lives where the
// data lives; on a served store, run them on the serving host).

import (
	"flag"
	"fmt"

	"repro/internal/schema"
	"repro/internal/vcs"
)

func openRepo(db string) (*schema.Store, *vcs.Repo, error) {
	store, err := schema.Open(db)
	if err != nil {
		return nil, nil, err
	}
	repo, err := store.EnableVersioning()
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return store, repo, nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func cmdLog(args []string) error {
	fs := flag.NewFlagSet("log", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	ref := fs.String("ref", "main", "branch or commit to log from")
	limit := fs.Int("limit", 20, "maximum commits to show (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, repo, err := openRepo(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	commits, err := repo.Log(*ref, *limit)
	if err != nil {
		return err
	}
	for _, c := range commits {
		line := fmt.Sprintf("%s  %s", shortHash(c.Hash), c.Message)
		if c.Author != "" {
			line += fmt.Sprintf("  (%s", c.Author)
			if c.Created != "" {
				line += ", " + c.Created
			}
			line += ")"
		}
		if len(c.Parents) > 1 {
			line += fmt.Sprintf("  [merge of %d parents]", len(c.Parents))
		}
		if c.CampaignID != 0 {
			line += fmt.Sprintf("  campaign #%d", c.CampaignID)
		}
		fmt.Println(line)
	}
	return nil
}

func cmdVCSDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	from := fs.String("from", "main", "base ref (branch, commit, or WORKING)")
	to := fs.String("to", "WORKING", "target ref (branch, commit, or WORKING)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, repo, err := openRepo(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	changes, err := repo.Diff(*from, *to)
	if err != nil {
		return err
	}
	if len(changes) == 0 {
		fmt.Printf("no differences between %s and %s\n", *from, *to)
		return nil
	}
	for _, c := range changes {
		switch c.Kind {
		case "add":
			fmt.Printf("+ %s pk=%v %s\n", c.Table, c.PK, renderRow(c.Row))
		case "delete":
			fmt.Printf("- %s pk=%v %s\n", c.Table, c.PK, renderRow(c.Row))
		case "modify":
			for _, cc := range c.Cols {
				fmt.Printf("~ %s pk=%v %s: %s -> %s\n",
					c.Table, c.PK, cc.Column, vcs.FormatValue(cc.Old), vcs.FormatValue(cc.New))
			}
		default:
			fmt.Printf("! %s schema changed\n", c.Table)
		}
	}
	return nil
}

func renderRow(row []any) string {
	out := "("
	for i, v := range row {
		if i > 0 {
			out += ", "
		}
		out += vcs.FormatValue(v)
	}
	return out + ")"
}

func cmdBranch(args []string) error {
	fs := flag.NewFlagSet("branch", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	from := fs.String("from", "", "base ref for a new branch (default: commit the working state)")
	checkout := fs.String("checkout", "", "check out this ref instead of creating a branch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, repo, err := openRepo(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	if *checkout != "" {
		if err := repo.Checkout(*checkout); err != nil {
			return err
		}
		fmt.Printf("checked out %s\n", *checkout)
		return nil
	}
	if fs.NArg() == 0 {
		branches, err := repo.Branches()
		if err != nil {
			return err
		}
		if len(branches) == 0 {
			fmt.Println("no branches (run a campaign with --branch, or: iokc branch NAME)")
			return nil
		}
		for _, b := range branches {
			fmt.Printf("%s  %s\n", shortHash(b.Head), b.Name)
		}
		return nil
	}
	name := fs.Arg(0)
	if err := repo.Branch(name, *from); err != nil {
		return err
	}
	head, err := repo.Head(name)
	if err != nil {
		return err
	}
	fmt.Printf("branch %s at %s\n", name, shortHash(head))
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	ours := fs.String("into", "main", "branch to merge into (its head must match the working state)")
	author := fs.String("author", "iokc", "merge commit author")
	message := fs.String("message", "", "merge commit message")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("merge: need the branch to merge, e.g.: iokc merge --into main tuning")
	}
	theirs := fs.Arg(0)
	store, repo, err := openRepo(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	msg := *message
	if msg == "" {
		msg = fmt.Sprintf("merge %s into %s", theirs, *ours)
	}
	res, err := repo.Merge(*ours, theirs, *author, msg)
	if err != nil {
		return err
	}
	if len(res.Conflicts) > 0 {
		fmt.Printf("merge of %s into %s has %d conflict(s):\n", theirs, *ours, len(res.Conflicts))
		for _, c := range res.Conflicts {
			fmt.Printf("  %s: %s pk=%v col=%s (base=%s ours=%s theirs=%s)\n",
				c.Kind, c.Table, c.PK, c.Column,
				vcs.FormatValue(c.Base), vcs.FormatValue(c.Ours), vcs.FormatValue(c.Theirs))
		}
		fmt.Println("inspect with: SELECT * FROM __conflicts")
		return fmt.Errorf("merge: %d conflict(s), nothing applied", len(res.Conflicts))
	}
	switch {
	case res.FastForward:
		fmt.Printf("fast-forwarded %s to %s (%d row change(s))\n", *ours, shortHash(res.Commit), res.Changes)
	default:
		fmt.Printf("merged %s into %s: commit %s (%d row change(s))\n", theirs, *ours, shortHash(res.Commit), res.Changes)
	}
	return nil
}
