package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseServeArgs(t *testing.T) {
	cfg, err := parseServeArgs([]string{
		"--db", "k.db", "--addr", "127.0.0.1:8181", "--api",
		"--api-rate", "100", "--api-max-inflight", "64",
		"--replica", "kdb://127.0.0.1:7070",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.apiOn || cfg.apiRate != 100 || cfg.apiMaxInflight != 64 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.apiBurst != 100 {
		t.Errorf("burst should default to rate, got %v", cfg.apiBurst)
	}
	if len(cfg.replicas) != 1 {
		t.Errorf("replicas = %v", cfg.replicas)
	}
}

// waitHTTP polls until the server answers (or the deadline passes).
func waitHTTP(t *testing.T, url string) *http.Response {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			return resp
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
	return nil
}

// TestServeGracefulShutdown pins the drain-on-SIGTERM contract for the
// combined explorer+API listener: cancelling the context must close the
// port and return nil (a clean drain), not leave the listener accepting.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	addr := reservePort(t)
	cfg, err := parseServeArgs([]string{"--db", dir + "/k.db", "--addr", addr, "--api"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- runServe(ctx, cfg) }()

	// Both fronts answer on the one listener.
	resp := waitHTTP(t, "http://"+addr+"/v1/healthz")
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st["role"] != "primary" {
		t.Fatalf("healthz role %v", st["role"])
	}
	resp = waitHTTP(t, "http://"+addr+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explorer status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Unknown API paths are structured JSON 404s, not explorer HTML.
	resp = waitHTTP(t, "http://"+addr+"/v1/definitely-not-here")
	if resp.StatusCode != http.StatusNotFound || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("API 404: status %d type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("runServe returned %v on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServe did not return after cancel")
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeDBMetricsListenerStopsWithServer pins the satellite fix: the
// /metrics side listener must go down with the wire server instead of
// outliving the drain and advertising a dead node as healthy.
func TestServeDBMetricsListenerStopsWithServer(t *testing.T) {
	dir := t.TempDir()
	wireAddr := reservePort(t)
	metricsAddr := reservePort(t)
	cfg, err := parseServeDBArgs([]string{
		"--db", dir + "/m.kdb", "--addr", wireAddr, "--metrics-addr", metricsAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- runServeDB(ctx, cfg) }()

	resp := waitHTTP(t, "http://"+metricsAddr+"/healthz")
	resp.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("runServeDB returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServeDB did not return after cancel")
	}
	if _, err := net.DialTimeout("tcp", metricsAddr, 200*time.Millisecond); err == nil {
		t.Fatal("metrics listener outlived the wire server")
	}
	if _, err := net.DialTimeout("tcp", wireAddr, 200*time.Millisecond); err == nil {
		t.Fatal("wire listener still accepting after shutdown")
	}
}

// TestLoadgenSelfTestCLI runs the CLI smoke end to end at a small scale:
// the same path `make loadsmoke` gates CI with.
func TestLoadgenSelfTestCLI(t *testing.T) {
	err := cmdLoadgen([]string{
		"--selftest", "--conns", "16", "--duration", "300ms",
		"--objects", "10", "--io500", "10", "--max-p99", "30s",
	})
	if err != nil {
		t.Fatalf("loadgen selftest: %v", err)
	}
	// Exactly one of --url / --selftest.
	if err := cmdLoadgen([]string{"--conns", "1"}); err == nil {
		t.Fatal("loadgen without target accepted")
	}
	if err := cmdLoadgen([]string{"--url", "http://x", "--selftest"}); err == nil {
		t.Fatal("loadgen with both targets accepted")
	}
}

// TestServeAPIOnly ensures --api-only serves no HTML explorer.
func TestServeAPIOnly(t *testing.T) {
	dir := t.TempDir()
	addr := reservePort(t)
	cfg, err := parseServeArgs([]string{"--db", dir + "/k.db", "--addr", addr, "--api-only"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- runServe(ctx, cfg) }()

	resp := waitHTTP(t, fmt.Sprintf("http://%s/v1/healthz", addr))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("api-only root: status %d type %s, want JSON 404", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
