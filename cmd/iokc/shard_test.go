package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/kdb"
	"repro/internal/shard"
)

func TestParseServeDBShardArgs(t *testing.T) {
	cfg, err := parseServeDBArgs([]string{
		"--shard", "kdb://127.0.0.1:7071",
		"--shard", "kdb://127.0.0.1:7072,kdb://127.0.0.1:7172",
		"--epoch", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.shards) != 2 || cfg.epoch != 3 {
		t.Errorf("cfg = %+v", cfg)
	}
	cfg, err = parseServeDBArgs([]string{"--db", "s1.kdb", "--shard-index", "1", "--shard-count", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shardIndex != 1 || cfg.shardCount != 4 {
		t.Errorf("cfg = %+v", cfg)
	}
	for _, bad := range [][]string{
		{"--shard", "kdb://h:1", "--replica-of", "kdb://h:2"},
		{"--shard", "kdb://h:1", "--shard-count", "2"},
		{"--shard", "kdb://h:1", "--epoch", "0"},
		{"--shard-index", "1"},
		{"--shard-index", "4", "--shard-count", "4"},
		{"--shard-index", "-1", "--shard-count", "4"},
	} {
		if _, err := parseServeDBArgs(bad); err == nil {
			t.Errorf("parseServeDBArgs(%v) accepted, want error", bad)
		}
	}
}

// startServeDB runs "iokc servedb" with the given args in the background
// and registers a cleanup that shuts it down and checks its exit error.
func startServeDB(t *testing.T, args ...string) {
	t.Helper()
	cfg, err := parseServeDBArgs(args)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServeDB(ctx, cfg) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("runServeDB(%v): %v", args, err)
		}
	})
}

// waitShardMap polls until a coordinator at addr serves its shard map.
func waitShardMap(t *testing.T, addr string) *shard.Map {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := shard.FetchMap("kdb://" + addr)
		if err == nil {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator at %s never served a shard map: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedDeploymentWorkflow is the CLI deployment shape end to end:
// two strided data shards and a coordinator, all via "iokc servedb"
// flags, with generate/list working against the shard:// store URL.
func TestShardedDeploymentWorkflow(t *testing.T) {
	dir := t.TempDir()
	a0, a1, ac := reservePort(t), reservePort(t), reservePort(t)
	startServeDB(t, "--db", dir+"/s0.kdb", "--addr", a0, "--shard-index", "0", "--shard-count", "2")
	startServeDB(t, "--db", dir+"/s1.kdb", "--addr", a1, "--shard-index", "1", "--shard-count", "2")

	// The coordinator dials its shards at startup, so they must be up
	// and answering before it launches.
	for _, a := range []string{a0, a1} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			r, err := kdb.Dial("kdb://" + a)
			if err == nil {
				_, err = r.Status()
				r.Close()
				if err == nil {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("data shard at %s never came up: %v", a, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	startServeDB(t, "--addr", ac, "--epoch", "7",
		"--shard", "kdb://"+a0, "--shard", "kdb://"+a1)
	m := waitShardMap(t, ac)
	if m.Epoch != 7 || len(m.Shards) != 2 {
		t.Fatalf("shard map = %+v", m)
	}

	url := "shard://" + ac
	out, err := capture(t, func() error {
		return run([]string{"generate", "--db", url, "--seed", "5",
			"ior", "-a", "posix", "-b", "4m", "-t", "2m", "-s", "4", "-N", "20", "-F", "-C", "-o", "/scratch/r"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored knowledge object #") {
		t.Errorf("sharded generate output:\n%s", out)
	}
	out, err = capture(t, func() error { return run([]string{"list", "--db", url}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 knowledge object(s):") {
		t.Errorf("sharded list output:\n%s", out)
	}
}
