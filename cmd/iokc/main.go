// Command iokc drives the full I/O knowledge cycle from the command line:
//
//	iokc generate [--db FILE] [--seed N] [--trace FILE] {ior ARGS... | io500 | hacc | darshan ARGS...}
//	iokc jube [--db FILE] [--seed N] [--trace FILE] --config FILE [--basedir DIR]
//	iokc campaign [--db FILE] [--seed N] [--workers N] [--retries N] [--batch N] [--name S] [--trace FILE] [--self-observe] {--config FILE | CMD...}
//	iokc extract [--db FILE] [--path FILE_OR_WORKSPACE]
//	iokc dxt --log FILE [--bins N]
//	iokc trace [--seed N] [--out FILE] -- IOR ARGS...
//	iokc list [--db FILE]
//	iokc show [--db FILE] --id N
//	iokc analyze [--db FILE] --id N
//	iokc recommend [--db FILE] --id N
//	iokc configure [--db FILE] --id N [-t SIZE] [-b SIZE] [-s N] [-i N] [-N N]
//	iokc causes [--db FILE] --id N --sacct FILE [--exclude-user U]
//	iokc tune [--tasks N] [--burst SIZE] [--seed N]
//	iokc serve [--db FILE] [--addr :8080] [--replica ADDR]... [--api] [--api-only] [--slow-query DUR] [--pprof]
//	iokc loadgen {--url URL | --selftest} [--conns N] [--duration DUR] [--seed N] [--max-p99 DUR] [--json]
//	iokc servedb [--db FILE] [--addr :7070] [--metrics-addr :9090] [--replica-of ADDR] [--advertise ADDR] [--slow-query DUR] [--pprof]
//	iokc servedb --db FILE --shard-index I --shard-count N           (serve one shard of a partitioned store)
//	iokc servedb --shard ADDR[,REPLICA...] --shard ADDR... [--epoch N] (serve a scatter-gather coordinator)
//
// Every --db flag also accepts a kdb://host:port connection URL, so any
// subcommand can work against a shared remote knowledge base served by
// "iokc servedb" — the paper's local/public database split — and a
// shard://host:port URL, which discovers the shard map from a
// coordinator's address and opens a client-side scatter-gather
// connection across all shards.
//
// Each subcommand is one phase (or one usage) of the cycle; the database
// file is the shared knowledge base connecting them.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/anomaly"
	"repro/internal/api"
	"repro/internal/bbox"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/darshan"
	"repro/internal/dxt"
	"repro/internal/explorer"
	"repro/internal/extract"
	"repro/internal/haccio"
	"repro/internal/io500"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/loadgen"
	"repro/internal/recommend"
	"repro/internal/repl"
	"repro/internal/schema"
	"repro/internal/sctuner"
	"repro/internal/shard"
	"repro/internal/siox"
	"repro/internal/slurm"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/vcs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iokc:", err)
		os.Exit(1)
	}
}

const usage = "usage: iokc {generate|jube|campaign|extract|dxt|trace|list|show|analyze|analytics|recommend|configure|causes|tune|log|diff|branch|merge|serve|servedb|loadgen} [flags]"

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "generate":
		return cmdGenerate(rest)
	case "jube":
		return cmdJube(rest)
	case "campaign":
		return cmdCampaign(rest)
	case "extract":
		return cmdExtract(rest)
	case "dxt":
		return cmdDXT(rest)
	case "trace":
		return cmdTrace(rest)
	case "list":
		return cmdList(rest)
	case "show":
		return cmdShow(rest)
	case "analyze":
		return cmdAnalyze(rest)
	case "analytics":
		return cmdAnalytics(rest)
	case "recommend":
		return cmdRecommend(rest)
	case "configure":
		return cmdConfigure(rest)
	case "causes":
		return cmdCauses(rest)
	case "tune":
		return cmdTune(rest)
	case "log":
		return cmdLog(rest)
	case "diff":
		return cmdVCSDiff(rest)
	case "branch":
		return cmdBranch(rest)
	case "merge":
		return cmdMerge(rest)
	case "serve":
		return cmdServe(rest)
	case "servedb":
		return cmdServeDB(rest)
	case "loadgen":
		return cmdLoadgen(rest)
	}
	return fmt.Errorf("unknown subcommand %q\n%s", sub, usage)
}

// dumpTrace ends the root span, writes the JSON trace to path, and prints
// the flame-style text tree. A "" path is a no-op so callers can defer it
// unconditionally.
func dumpTrace(root *telemetry.Span, path string) error {
	root.End()
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := root.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s\n%s", path, root.Tree())
	return nil
}

func openCycle(db string, seed uint64) (*core.Cycle, error) {
	store, err := schema.Open(db)
	if err != nil {
		return nil, err
	}
	c, err := core.New(cluster.FuchsCSC(), seed)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := c.Store.Close(); err != nil {
		store.Close()
		return nil, err
	}
	c.Store = store
	return c, nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	seed := fs.Uint64("seed", 1, "simulation seed")
	traceOut := fs.String("trace", "", "write the run's span tree to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("generate: which generator? (ior ARGS..., io500, hacc, darshan ARGS...)")
	}
	c, err := openCycle(*db, *seed)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	root := telemetry.StartSpan("iokc generate")
	c.Trace = root
	var g core.Generator
	switch fs.Arg(0) {
	case "ior":
		cfg, err := ior.ParseArgs(fs.Args()[1:])
		if err != nil {
			return err
		}
		if cfg.NumTasks <= 0 {
			cfg.NumTasks = c.Machine.CoresPerNode
		}
		g = core.IORGenerator{Config: cfg}
	case "io500":
		g = core.IO500Generator{Config: io500.Default()}
	case "hacc":
		g = core.HACCGenerator{Config: haccio.Default()}
	case "darshan":
		cfg, err := ior.ParseArgs(fs.Args()[1:])
		if err != nil {
			return err
		}
		if cfg.NumTasks <= 0 {
			cfg.NumTasks = c.Machine.CoresPerNode
		}
		g = core.DarshanGenerator{Config: cfg, JobID: *seed}
	default:
		return fmt.Errorf("generate: unknown generator %q", fs.Arg(0))
	}
	rep, err := c.Run(g)
	if err != nil {
		return err
	}
	fmt.Printf("generator %s: %d artifact(s)\n", rep.Generator, rep.Artifacts)
	for _, id := range rep.ObjectIDs {
		fmt.Printf("stored knowledge object #%d\n", id)
	}
	for _, id := range rep.IO500IDs {
		fmt.Printf("stored IO500 knowledge #%d\n", id)
	}
	return dumpTrace(root, *traceOut)
}

func cmdJube(args []string) error {
	fs := flag.NewFlagSet("jube", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	seed := fs.Uint64("seed", 1, "simulation seed")
	config := fs.String("config", "", "JUBE XML configuration file")
	baseDir := fs.String("basedir", ".", "workspace host directory")
	traceOut := fs.String("trace", "", "write the run's span tree to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config == "" {
		return fmt.Errorf("jube: --config is required")
	}
	data, err := os.ReadFile(*config)
	if err != nil {
		return err
	}
	c, err := openCycle(*db, *seed)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	root := telemetry.StartSpan("iokc jube")
	c.Trace = root
	rep, err := c.Run(core.JUBEGenerator{ConfigXML: string(data), BaseDir: *baseDir})
	if err != nil {
		return err
	}
	fmt.Printf("jube: %d workpackage(s), %d knowledge object(s), %d io500 run(s)\n",
		rep.Artifacts, len(rep.ObjectIDs), len(rep.IO500IDs))
	return dumpTrace(root, *traceOut)
}

// cmdCampaign expands a sweep (a JUBE configuration or explicit benchmark
// command lines) and runs it through the parallel knowledge-cycle
// scheduler. SIGINT cancels gracefully: running units finish, waiting
// units are recorded as cancelled.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	seed := fs.Uint64("seed", 1, "campaign base seed (unit seeds derive from it)")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	retries := fs.Int("retries", 3, "attempts per unit")
	batch := fs.Int("batch", 16, "units per ingestion batch")
	name := fs.String("name", "", "campaign name (default: config file or \"campaign\")")
	config := fs.String("config", "", "JUBE XML configuration to expand into units")
	traceOut := fs.String("trace", "", "write the campaign's span tree to this JSON file")
	selfObserve := fs.Bool("self-observe", true, "persist the campaign's own phase timings as a knowledge object")
	branch := fs.String("branch", "", "run on this knowledge branch and commit the results (embedded databases only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec *campaign.Spec
	switch {
	case *config != "":
		data, err := os.ReadFile(*config)
		if err != nil {
			return err
		}
		if *name == "" {
			*name = *config
		}
		spec, err = campaign.FromJUBE(*name, *seed, string(data))
		if err != nil {
			return err
		}
	case fs.NArg() > 0:
		if *name == "" {
			*name = "campaign"
		}
		spec = &campaign.Spec{Name: *name, BaseSeed: *seed}
		for i, cmd := range fs.Args() {
			spec.Units = append(spec.Units, campaign.Unit{
				Index: i,
				Name:  cmd,
				Gen:   campaign.CommandGenerator{Label: "cmd", Commands: []string{cmd}},
			})
		}
	default:
		return fmt.Errorf("campaign: need --config FILE or benchmark command lines (e.g. 'ior -a posix -t 1m ...')")
	}
	store, err := schema.Open(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	var repo *vcs.Repo
	if *branch != "" {
		repo, err = store.EnableVersioning()
		if err != nil {
			return err
		}
		if err := repo.Switch(*branch); err != nil {
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	root := telemetry.StartSpan("iokc campaign")
	sched := &campaign.Scheduler{
		Store:       store,
		Workers:     *workers,
		MaxAttempts: *retries,
		BatchSize:   *batch,
		Trace:       root,
		SelfObserve: *selfObserve,
	}
	res, runErr := sched.Run(ctx, spec)
	if res != nil {
		fmt.Printf("campaign #%d %q: %d unit(s) on %d worker(s) in %v\n",
			res.CampaignID, res.Name, len(res.Runs), res.Workers, res.Wall.Round(time.Millisecond))
		fmt.Printf("ok %d, failed %d, cancelled %d; %d knowledge object(s), %d io500 run(s)\n",
			res.OK, res.Failed, res.Cancelled, len(res.ObjectIDs), len(res.IO500IDs))
		if res.TelemetryID != 0 {
			fmt.Printf("self-observation: phase timings stored as knowledge object #%d\n", res.TelemetryID)
		}
		if repo != nil && runErr == nil {
			hash, created, err := repo.Commit(*branch, "iokc",
				fmt.Sprintf("campaign %q", res.Name), res.CampaignID)
			switch {
			case err != nil:
				runErr = fmt.Errorf("campaign succeeded but commit on %q failed: %w", *branch, err)
			case created:
				fmt.Printf("committed on branch %s: %s\n", *branch, hash[:12])
			default:
				fmt.Printf("branch %s unchanged (commit %s)\n", *branch, hash[:12])
			}
		}
		for _, r := range res.Runs {
			if r.Status == "failed" {
				fmt.Printf("  unit %d %q failed after %d attempt(s): %v\n", r.Unit.Index, r.Unit.Name, r.Attempts, r.Err)
			}
		}
	}
	if err := dumpTrace(root, *traceOut); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// cmdExtract implements the paper's stand-alone knowledge extractor: it
// expects the path of an output as a parameter; if the path is a
// directory (or omitted, defaulting to the working directory), it
// automatically searches the JUBE workspace for available benchmark
// results (§V-B).
func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	path := fs.String("path", ".", "output file or JUBE workspace directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := schema.Open(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	reg := extract.NewRegistry()
	info, err := os.Stat(*path)
	if err != nil {
		return err
	}
	var extractions []*extract.Extraction
	if info.IsDir() {
		extractions, err = reg.ScanWorkspace(*path)
	} else {
		var ex *extract.Extraction
		ex, err = reg.ExtractFile(*path)
		extractions = []*extract.Extraction{ex}
	}
	if err != nil {
		return err
	}
	if len(extractions) == 0 {
		fmt.Println("no recognizable benchmark outputs found")
		return nil
	}
	for _, ex := range extractions {
		switch {
		case ex.Object != nil:
			id, err := store.SaveObject(ex.Object)
			if err != nil {
				return err
			}
			fmt.Printf("stored knowledge object #%d (%s)\n", id, ex.Object.Source)
		case ex.IO500 != nil:
			id, err := store.SaveIO500(ex.IO500)
			if err != nil {
				return err
			}
			fmt.Printf("stored IO500 knowledge #%d\n", id)
		}
	}
	return nil
}

// cmdDXT analyzes a Darshan-style binary log's extended trace segments —
// the DXT Explorer role.
func cmdDXT(args []string) error {
	fs := flag.NewFlagSet("dxt", flag.ContinueOnError)
	logPath := fs.String("log", "", "Darshan-style binary log")
	bins := fs.Int("bins", 20, "timeline bins")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("dxt: --log is required")
	}
	data, err := os.ReadFile(*logPath)
	if err != nil {
		return err
	}
	l, err := darshan.Unmarshal(data)
	if err != nil {
		return err
	}
	a, err := dxt.Analyze(l.DXT, *bins)
	if err != nil {
		return err
	}
	fmt.Print(a.Report())
	return nil
}

// cmdTrace runs an IOR pattern under SIOX-style multi-level activity
// capture, optionally stores the compressed trace, and prints the
// analysis (level breakdown + slowest causal chain).
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	out := fs.String("out", "", "write the compressed trace to this file")
	ranks := fs.Int("ranks", 2, "ranks to capture")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := ior.ParseArgs(fs.Args())
	if err != nil {
		return err
	}
	m := cluster.FuchsCSC()
	if cfg.NumTasks <= 0 {
		cfg.NumTasks = m.CoresPerNode
	}
	runRes, err := (&ior.Runner{Machine: m, Seed: *seed}).Run(cfg)
	if err != nil {
		return err
	}
	trace, err := siox.CaptureIOR(runRes, *ranks)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := siox.Write(f, trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *out)
	}
	fmt.Print(trace.Report())
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := schema.Open(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	objs, err := store.ListObjects()
	if err != nil {
		return err
	}
	fmt.Printf("%d knowledge object(s):\n", len(objs))
	for _, m := range objs {
		fmt.Printf("  #%-4d %-8s %s\n", m.ID, m.Source, m.Command)
	}
	io5, err := store.ListIO500()
	if err != nil {
		return err
	}
	fmt.Printf("%d IO500 run(s):\n", len(io5))
	for _, m := range io5 {
		fmt.Printf("  #%-4d %s\n", m.ID, m.Command)
	}
	return nil
}

// cmdAnalytics characterizes the stored corpus through the columnar
// engine: score aggregates, percentile bands, operation baselines, and
// the engine's own telemetry (segments scanned vs zone-map skipped).
func cmdAnalytics(args []string) error {
	fs := flag.NewFlagSet("analytics", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	op := fs.String("op", "", "also report the cross-run baseline for this operation (e.g. write)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := schema.Open(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	cs, err := store.EnableAnalytics()
	if err != nil {
		return err
	}
	defer store.DisableAnalytics()

	row, err := store.DB.QueryRow("SELECT COUNT(*) FROM IOFHsScores")
	if err != nil {
		return err
	}
	nScores := row[0].(int64)
	fmt.Printf("IO500 submissions: %d\n", nScores)
	if nScores > 0 {
		agg, err := store.DB.QueryRow("SELECT MIN(total), AVG(total), MAX(total) FROM IOFHsScores")
		if err != nil {
			return err
		}
		fmt.Printf("total score: min %.2f, mean %.2f, max %.2f\n",
			asF(agg[0]), asF(agg[1]), asF(agg[2]))
		bands, err := bbox.CorpusBands(cs, 5, 95)
		if err != nil {
			return err
		}
		fmt.Printf("corpus bands: %s\n", bands)
	}
	if *op != "" {
		n, mean, err := store.OperationBaseline(*op)
		if err != nil {
			return err
		}
		fmt.Printf("%s baseline: %d summaries, mean %.1f MiB/s\n", *op, n, mean)
	}
	st := cs.Stats()
	fmt.Printf("colstore: served %d, fallbacks %d, rebuilds %d, segments scanned %d, skipped %d\n",
		st.Served, st.Fallbacks, st.Rebuilds, st.SegmentsScanned, st.SegmentsSkipped)
	return nil
}

// asF widens a query cell to float64 for report formatting.
func asF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	id := fs.Int64("id", 0, "knowledge object id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := schema.Open(*db)
	if err != nil {
		return err
	}
	defer store.Close()
	o, err := store.LoadObject(*id)
	if err != nil {
		return err
	}
	return o.EncodeJSON(os.Stdout)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	id := fs.Int64("id", 0, "knowledge object id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := openCycle(*db, 1)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	findings, err := c.Analyze(*id)
	if err != nil {
		return err
	}
	fmt.Print(anomaly.Report(findings))
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	id := fs.Int64("id", 0, "knowledge object id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := openCycle(*db, 1)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	recs, err := c.Recommend(*id)
	if err != nil {
		return err
	}
	fmt.Print(recommend.Report(recs))
	return nil
}

func cmdConfigure(args []string) error {
	fs := flag.NewFlagSet("configure", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	id := fs.Int64("id", 0, "knowledge object id")
	overrides := map[string]*string{
		"-b": fs.String("b", "", "override block size"),
		"-t": fs.String("t", "", "override transfer size"),
		"-s": fs.String("s", "", "override segments"),
		"-i": fs.String("i", "", "override repetitions"),
		"-N": fs.String("N", "", "override tasks"),
		"-o": fs.String("o", "", "override test file"),
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := openCycle(*db, 1)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	ov := map[string]string{}
	for k, v := range overrides {
		if *v != "" {
			ov[k] = *v
		}
	}
	cmd, err := c.NewConfiguration(*id, ov)
	if err != nil {
		return err
	}
	fmt.Println(cmd)
	return nil
}

func cmdCauses(args []string) error {
	fs := flag.NewFlagSet("causes", flag.ContinueOnError)
	db := fs.String("db", "knowledge.db", "knowledge database")
	id := fs.Int64("id", 0, "knowledge object id")
	sacct := fs.String("sacct", "", "sacct --parsable2 accounting file")
	excludeUser := fs.String("exclude-user", "", "drop this user's jobs from suspects")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sacct == "" {
		return fmt.Errorf("causes: --sacct is required")
	}
	f, err := os.Open(*sacct)
	if err != nil {
		return err
	}
	jobs, err := slurm.ParseSacct(f)
	f.Close()
	if err != nil {
		return err
	}
	c, err := openCycle(*db, 1)
	if err != nil {
		return err
	}
	defer c.Store.Close()
	causes, err := c.CorrelateCauses(*id, jobs, *excludeUser)
	if err != nil {
		return err
	}
	if len(causes) == 0 {
		fmt.Println("no anomalies to correlate")
		return nil
	}
	for _, cause := range causes {
		fmt.Printf("finding: %s\nwindow: %s .. %s\n%s",
			cause.Finding, cause.From.Format("2006-01-02T15:04:05"), cause.To.Format("2006-01-02T15:04:05"),
			slurm.Report(cause.Suspects))
	}
	return nil
}

// cmdTune profiles the machine with the SCTuner grid and prints the
// best-known configuration for the given runtime I/O pattern.
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	tasks := fs.Int("tasks", 80, "runtime pattern: MPI ranks")
	burst := fs.String("burst", "8m", "runtime pattern: bytes per rank per burst")
	seed := fs.Uint64("seed", 1, "profiling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	burstBytes, err := units.ParseSize(*burst)
	if err != nil {
		return fmt.Errorf("tune: --burst: %v", err)
	}
	m := cluster.FuchsCSC()
	space := sctuner.DefaultSpace()
	profile, err := sctuner.Build(m, space, 2, *seed)
	if err != nil {
		return err
	}
	rec, err := profile.Recommend(space.Patterns, sctuner.Pattern{Tasks: *tasks, BurstSize: burstBytes})
	if err != nil {
		return err
	}
	fmt.Printf("pattern class: %s\n", rec.Pattern)
	fmt.Printf("recommended configuration: %s\n", rec.Config)
	fmt.Printf("expected gain over worst profiled configuration: %.1fx\n", rec.Gain)
	return nil
}

// serveDBConfig is the parsed flag set of "iokc servedb", split from the
// serving loop so tests can exercise flag validation and run the server
// under a cancellable context.
type serveDBConfig struct {
	db          string
	addr        string
	maxConns    int
	idle        time.Duration
	metricsAddr string
	pprofOn     bool
	replicaOf   string
	advertise   string
	shards      []string
	epoch       int64
	shardIndex  int
	shardCount  int
	slowQuery   time.Duration
}

func parseServeDBArgs(args []string) (*serveDBConfig, error) {
	fs := flag.NewFlagSet("servedb", flag.ContinueOnError)
	cfg := &serveDBConfig{}
	fs.StringVar(&cfg.db, "db", "knowledge.db", "knowledge database file to serve")
	fs.StringVar(&cfg.addr, "addr", ":7070", "listen address")
	fs.IntVar(&cfg.maxConns, "max-conns", kdb.DefaultMaxConns, "maximum concurrent client connections")
	fs.DurationVar(&cfg.idle, "idle-timeout", kdb.DefaultIdleTimeout, "per-connection idle timeout")
	fs.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /metrics.json and /healthz over HTTP on this address (empty = disabled)")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "expose /debug/pprof on the metrics address")
	fs.StringVar(&cfg.replicaOf, "replica-of", "", "serve as a read-only replica of the primary at this kdb:// address")
	fs.StringVar(&cfg.advertise, "advertise", "", "address reported to clients asking for this node's status")
	var shards replicaFlags
	fs.Var(&shards, "shard", "kdb:// address of a shard primary, optionally \"primary,replica,...\" (repeatable); serve as a scatter-gather coordinator over these shards instead of a local file")
	fs.Int64Var(&cfg.epoch, "epoch", 1, "shard-map epoch served to clients in coordinator mode")
	fs.IntVar(&cfg.shardIndex, "shard-index", 0, "this node's shard number when serving one shard of a partitioned store (requires --shard-count)")
	fs.IntVar(&cfg.shardCount, "shard-count", 0, "total shard count; strides auto-increment ids so shards never collide")
	fs.DurationVar(&cfg.slowQuery, "slow-query", 0, "trace queries and log those slower than this to __slow_queries (0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg.shards = shards
	if cfg.pprofOn && cfg.metricsAddr == "" {
		return nil, fmt.Errorf("servedb: --pprof requires --metrics-addr")
	}
	if strings.HasPrefix(cfg.db, "kdb://") {
		return nil, fmt.Errorf("servedb: --db must be a local file, not a kdb:// URL")
	}
	if len(cfg.shards) > 0 {
		if cfg.replicaOf != "" {
			return nil, fmt.Errorf("servedb: --shard and --replica-of are mutually exclusive")
		}
		if cfg.shardCount > 0 {
			return nil, fmt.Errorf("servedb: --shard (coordinator mode) and --shard-count (data-shard mode) are mutually exclusive")
		}
		if cfg.epoch < 1 {
			return nil, fmt.Errorf("servedb: --epoch must be >= 1")
		}
	}
	if cfg.shardCount < 0 || (cfg.shardCount > 0 && (cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shardCount)) {
		return nil, fmt.Errorf("servedb: --shard-index must be in [0, --shard-count)")
	}
	if cfg.shardCount == 0 && cfg.shardIndex != 0 {
		return nil, fmt.Errorf("servedb: --shard-index requires --shard-count")
	}
	return cfg, nil
}

// cmdServeDB exposes a local knowledge database over the kdb wire
// protocol, making it the shared "public database" of the paper's Fig. 4.
// With --replica-of it instead serves a read-only replica that follows
// the given primary: it bootstraps from a snapshot when needed, applies
// the primary's log records as they commit, and keeps retrying with
// backoff while the primary is unreachable. SIGINT/SIGTERM trigger a
// graceful shutdown: the listener closes, idle connections drop, and
// in-flight requests get up to 10s to finish.
func cmdServeDB(args []string) error {
	cfg, err := parseServeDBArgs(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServeDB(ctx, cfg)
}

func runServeDB(ctx context.Context, cfg *serveDBConfig) error {
	if len(cfg.shards) > 0 {
		return runShardCoordinator(ctx, cfg)
	}
	var opts kdb.DBOptions
	if cfg.shardCount > 0 {
		// One shard of a partitioned store: stride the auto-increment id
		// space so ids assigned here never collide with sibling shards.
		opts.AutoIDOffset = int64(cfg.shardIndex)
		opts.AutoIDStride = int64(cfg.shardCount)
	}
	backing, err := kdb.OpenWithOptions(cfg.db, opts)
	if err != nil {
		return err
	}
	defer backing.Close()
	srv := &kdb.Server{DB: backing, MaxConns: cfg.maxConns, IdleTimeout: cfg.idle, Advertise: cfg.advertise}
	health := repl.PrimaryStatus(backing, cfg.advertise)
	if cfg.replicaOf != "" {
		srv.Role = "replica"
		srv.ReadOnly = true
		f := repl.NewFollower(backing, cfg.replicaOf, repl.Options{})
		f.Start(ctx)
		defer f.Stop()
		health = func() repl.Status {
			st := f.Health()
			st.Addr = cfg.advertise
			return st
		}
	}
	return serveWire(ctx, cfg, srv, health, func(a net.Addr) string {
		switch {
		case cfg.replicaOf != "":
			return fmt.Sprintf("knowledge database %s served on kdb://%s (read-only replica of %s)", cfg.db, a, cfg.replicaOf)
		case cfg.shardCount > 0:
			return fmt.Sprintf("knowledge database %s served on kdb://%s (shard %d of %d)", cfg.db, a, cfg.shardIndex, cfg.shardCount)
		default:
			return fmt.Sprintf("knowledge database %s served on kdb://%s", cfg.db, a)
		}
	})
}

// runShardCoordinator serves a database-less coordinator: writes are
// routed across the shard primaries named by --shard, reads scatter to
// every shard and the partial results are recombined, and the shardmap
// verb lets clients (including shard:// store URLs) discover the whole
// topology from this one address.
func runShardCoordinator(ctx context.Context, cfg *serveDBConfig) error {
	specs := make([]shard.Spec, 0, len(cfg.shards))
	conns := make([]kdb.Conn, 0, len(cfg.shards))
	fail := func(err error) error {
		for _, c := range conns {
			c.Close()
		}
		return err
	}
	for i, raw := range cfg.shards {
		spec, err := shard.ParseSpec(raw)
		if err != nil {
			return fail(fmt.Errorf("--shard %d: %w", i, err))
		}
		primary, err := kdb.Dial(spec.Primary)
		if err != nil {
			return fail(fmt.Errorf("shard %d (%s): %w", i, spec.Primary, err))
		}
		conn := kdb.Conn(primary)
		if len(spec.Replicas) > 0 {
			// Reads on this shard route to caught-up replicas; the
			// coordinator composes on top without knowing.
			replicas := make([]repl.Replica, 0, len(spec.Replicas))
			for _, addr := range spec.Replicas {
				r, err := kdb.Dial(addr)
				if err != nil {
					primary.Close()
					return fail(fmt.Errorf("shard %d replica (%s): %w", i, addr, err))
				}
				replicas = append(replicas, r)
			}
			conn = repl.NewRouter(primary, replicas...)
		}
		specs = append(specs, spec)
		conns = append(conns, conn)
	}
	coord, err := shard.New(conns...)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	if err := coord.SetMap(&shard.Map{Epoch: cfg.epoch, Shards: specs}); err != nil {
		return err
	}
	srv := &kdb.Server{Backend: coord, ShardMapFunc: coord.ShardMap, Role: "coordinator",
		MaxConns: cfg.maxConns, IdleTimeout: cfg.idle, Advertise: cfg.advertise}
	health := func() repl.Status {
		return repl.Status{Role: "coordinator", Addr: cfg.advertise, AppliedLSN: coord.LSN(), Epoch: cfg.epoch}
	}
	return serveWire(ctx, cfg, srv, health, func(a net.Addr) string {
		return fmt.Sprintf("shard coordinator (%d shards, epoch %d) on kdb://%s", len(specs), cfg.epoch, a)
	})
}

// serveWire runs the listen / metrics / graceful-shutdown loop shared by
// every servedb mode (primary, replica, data shard, coordinator).
func serveWire(ctx context.Context, cfg *serveDBConfig, srv *kdb.Server, health func() repl.Status, describe func(net.Addr) string) error {
	// Tracing: a non-zero --slow-query arms the slow-query log (and with
	// it span recording); the node name stamps this process's hops so a
	// trace that crosses the wire reads coordinator → shard → replica.
	telemetry.SetSlowQueryThreshold(cfg.slowQuery)
	node := cfg.advertise
	if node == "" {
		if node = srv.Role; node == "" {
			node = "primary"
		}
	}
	telemetry.SetTraceNode(node)
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Println(describe(l.Addr()))
	// The metrics listener rides the same shutdown path as the wire
	// server: mctx is cancelled the moment the wire server begins (or
	// finishes) draining, so a half-down node never keeps answering
	// /healthz and attracting load-balancer traffic.
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	merrc := make(chan error, 1)
	if cfg.metricsAddr != "" {
		// The wire protocol is raw TCP, so observability rides on a side
		// HTTP listener.
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
		mux.Handle("/metrics.json", telemetry.JSONHandler(telemetry.Default()))
		mux.Handle("/healthz", repl.HealthHandler(health))
		if cfg.pprofOn {
			telemetry.RegisterPprof(mux)
		}
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		go func() { merrc <- serveGraceful(mctx, ml, mux, 2*time.Second) }()
	} else {
		merrc <- nil
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		mcancel()
		<-merrc
		return err
	case <-ctx.Done():
		fmt.Println("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-merrc; err != nil {
			return fmt.Errorf("metrics shutdown: %w", err)
		}
		return nil
	}
}

// replicaFlags collects repeatable --replica flags.
type replicaFlags []string

func (r *replicaFlags) String() string { return strings.Join(*r, ",") }

func (r *replicaFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// openRoutedStore opens the knowledge store, fronting it with a
// read-your-writes router when replica addresses are given. The returned
// health function reflects the deployment: the router's view when
// replicated, a standalone primary otherwise.
func openRoutedStore(db string, replicas []string) (*schema.Store, func() repl.Status, error) {
	if len(replicas) == 0 {
		store, err := schema.Open(db)
		return store, nil, err
	}
	var primary kdb.Conn
	var err error
	if strings.HasPrefix(db, "kdb://") {
		primary, err = kdb.Dial(db)
	} else {
		primary, err = kdb.Open(db)
	}
	if err != nil {
		return nil, nil, err
	}
	reps := make([]repl.Replica, 0, len(replicas))
	for _, addr := range replicas {
		r, err := kdb.Dial(addr)
		if err != nil {
			primary.Close()
			return nil, nil, fmt.Errorf("replica %s: %w", addr, err)
		}
		reps = append(reps, r)
	}
	router := repl.NewRouter(primary, reps...)
	store, err := schema.Wrap(router)
	if err != nil {
		return nil, nil, err
	}
	return store, router.Health, nil
}

// serveConfig is the parsed `iokc serve` command line.
type serveConfig struct {
	db             string
	addr           string
	pprofOn        bool
	slowQuery      time.Duration
	replicas       []string
	apiOn          bool
	apiOnly        bool
	apiRate        float64
	apiBurst       float64
	apiMaxInflight int
	apiProbe       time.Duration
}

func parseServeArgs(args []string) (*serveConfig, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := &serveConfig{}
	fs.StringVar(&cfg.db, "db", "knowledge.db", "knowledge database")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "expose /debug/pprof endpoints")
	fs.DurationVar(&cfg.slowQuery, "slow-query", 0, "trace queries and log those slower than this to __slow_queries and /traces (0 = tracing off)")
	fs.BoolVar(&cfg.apiOn, "api", false, "mount the JSON API under /v1/ beside the explorer")
	fs.BoolVar(&cfg.apiOnly, "api-only", false, "serve only the JSON API (no HTML explorer)")
	fs.Float64Var(&cfg.apiRate, "api-rate", 0, "per-client API rate limit in requests/sec (0 = unlimited)")
	fs.Float64Var(&cfg.apiBurst, "api-burst", 0, "per-client API token-bucket burst (defaults to the rate)")
	fs.IntVar(&cfg.apiMaxInflight, "api-max-inflight", 0, "concurrent API request cap; excess sheds with 503 (0 = unlimited)")
	fs.DurationVar(&cfg.apiProbe, "api-probe", 0, "cache-invalidation LSN probe interval for remote backends (default 250ms)")
	var replicas replicaFlags
	fs.Var(&replicas, "replica", "kdb:// address of a read replica (repeatable); reads are routed to caught-up replicas")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg.replicas = replicas
	if cfg.apiRate > 0 && cfg.apiBurst == 0 {
		cfg.apiBurst = cfg.apiRate
	}
	return cfg, nil
}

// cmdServe runs the HTTP front ends — the HTML explorer, the JSON API, or
// both on one listener — with the same drain-on-SIGTERM path every server
// in this binary uses.
func cmdServe(args []string) error {
	cfg, err := parseServeArgs(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, cfg)
}

func runServe(ctx context.Context, cfg *serveConfig) error {
	telemetry.SetSlowQueryThreshold(cfg.slowQuery)
	telemetry.SetTraceNode("explorer")
	store, health, err := openRoutedStore(cfg.db, cfg.replicas)
	if err != nil {
		return err
	}
	defer store.Close()
	// Versioning is served when the store is embedded; remote/sharded
	// stores version on their serving side.
	if _, err := store.EnableVersioning(); err == nil {
		fmt.Println("versioned knowledge enabled (/history)")
	}
	var handler http.Handler
	if !cfg.apiOnly {
		exp := explorer.New(store)
		exp.Health = health
		if cfg.pprofOn {
			exp.EnablePprof()
		}
		handler = exp
	}
	if cfg.apiOn || cfg.apiOnly {
		apiSrv := api.New(api.Config{
			Store:         store,
			Health:        health,
			Rate:          cfg.apiRate,
			Burst:         cfg.apiBurst,
			MaxInflight:   cfg.apiMaxInflight,
			ProbeInterval: cfg.apiProbe,
		})
		defer apiSrv.Close()
		if cfg.apiOnly {
			handler = apiSrv
		} else {
			// One listener, one shutdown path: /v1/ is the API, everything
			// else stays the explorer.
			mux := http.NewServeMux()
			mux.Handle("/v1/", apiSrv)
			mux.Handle("/", handler)
			handler = mux
		}
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	switch {
	case cfg.apiOnly:
		fmt.Printf("knowledge API on http://%s/v1/ (db %s)\n", l.Addr(), cfg.db)
	case cfg.apiOn:
		fmt.Printf("knowledge explorer + API on %s (db %s, API under /v1/)\n", l.Addr(), cfg.db)
	default:
		fmt.Printf("knowledge explorer on %s (db %s)\n", l.Addr(), cfg.db)
	}
	return serveGraceful(ctx, l, handler, 10*time.Second)
}

// serveGraceful serves handler on l until ctx is cancelled, then drains
// in-flight requests for up to the drain timeout — the single graceful-
// shutdown path shared by the explorer, the API, and servedb's metrics
// listener.
func serveGraceful(ctx context.Context, l net.Listener, handler http.Handler, drain time.Duration) error {
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Println("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		return hs.Shutdown(sctx)
	}
}

// cmdLoadgen drives the client-model load harness against an API endpoint
// (or an in-process self-target) and optionally gates on the telemetry-
// histogram-derived p99 — the CI smoke's regression check.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "API base URL to drive, e.g. http://127.0.0.1:8080")
	conns := fs.Int("conns", 1000, "concurrent client connections, one TCP connection each")
	dur := fs.Duration("duration", 10*time.Second, "measured run duration")
	seed := fs.Uint64("seed", 1, "base seed; each client derives its own request stream")
	selftest := fs.Bool("selftest", false, "serve an in-process API over a synthetic corpus and drive that")
	objects := fs.Int("objects", 200, "synthetic knowledge objects for --selftest")
	io500N := fs.Int("io500", 200, "synthetic io500 runs for --selftest")
	maxP99 := fs.Duration("max-p99", 0, "fail when the histogram-derived p99 exceeds this (0 = no gate)")
	maxErrs := fs.Float64("max-error-rate", 0.01, "fail when errors/requests exceeds this fraction")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == !*selftest {
		return fmt.Errorf("loadgen: pass exactly one of --url or --selftest")
	}
	target := *url
	if *selftest {
		t, err := loadgen.StartSelfTarget(*objects, *io500N, *seed, api.Config{})
		if err != nil {
			return err
		}
		defer t.Close()
		target = t.URL
		fmt.Printf("self-target on %s (%d objects, %d io500 runs)\n", target, *objects, *io500N)
	}
	res, err := loadgen.Run(loadgen.Options{URL: target, Conns: *conns, Duration: *dur, Seed: *seed})
	if err != nil {
		return err
	}
	if *jsonOut {
		out, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Print(res.String())
	}
	if res.Requests > 0 && float64(res.Errors)/float64(res.Requests) > *maxErrs {
		return fmt.Errorf("loadgen: error rate %.2f%% exceeds %.2f%%",
			100*float64(res.Errors)/float64(res.Requests), 100**maxErrs)
	}
	if *maxP99 > 0 && res.HistP99 > maxP99.Seconds() {
		return fmt.Errorf("loadgen: histogram p99 %.1fms exceeds gate %s", res.HistP99*1e3, *maxP99)
	}
	return nil
}
