package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout during fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestRunPaperCommand(t *testing.T) {
	args := []string{"--seed", "7", "--tpn", "20", "--",
		"-a", "mpiio", "-b", "4m", "-t", "2m", "-s", "40", "-N", "80",
		"-F", "-C", "-e", "-i", "2", "-o", "/scratch/t", "-k"}
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IOR-3.3.0", "tasks               : 80", "Max Write:", "Summary of all tests:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDefaultTasks(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-o", "/scratch/x", "-s", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tasks               : 20") {
		t.Error("default tasks should be one full node")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"--seed"},
		{"--seed", "abc"},
		{"--tpn"},
		{"--tpn", "x"},
		{"-q"},
		{"-b", "3m", "-t", "2m"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
