// Command iorsim runs the IOR benchmark simulator against the modelled
// FUCHS-CSC cluster and prints IOR-3.3-format output. It accepts IOR's own
// command-line options plus simulator flags:
//
//	iorsim [--seed N] [--tpn N] -- -a mpiio -b 4m -t 2m -s 40 -N 80 -F -C -e -i 6 -o /scratch/test -k
//
// The "--" separator is optional; unknown leading --flags belong to the
// simulator, everything else is handed to the IOR option parser.
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/ior"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	seed := uint64(1)
	tpn := 0
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--seed":
			if i+1 >= len(args) {
				return fmt.Errorf("--seed needs a value")
			}
			v, err := strconv.ParseUint(args[i+1], 10, 64)
			if err != nil {
				return fmt.Errorf("--seed: %v", err)
			}
			seed = v
			i++
		case "--tpn":
			if i+1 >= len(args) {
				return fmt.Errorf("--tpn needs a value")
			}
			v, err := strconv.Atoi(args[i+1])
			if err != nil {
				return fmt.Errorf("--tpn: %v", err)
			}
			tpn = v
			i++
		case "--":
			rest = append(rest, args[i+1:]...)
			i = len(args)
		default:
			rest = append(rest, args[i])
		}
	}
	cfg, err := ior.ParseArgs(rest)
	if err != nil {
		return err
	}
	m := cluster.FuchsCSC()
	if cfg.NumTasks <= 0 {
		cfg.NumTasks = m.CoresPerNode
	}
	cfg.TasksPerNode = tpn
	r := &ior.Runner{Machine: m, Seed: seed}
	runResult, err := r.Run(cfg)
	if err != nil {
		return err
	}
	return ior.WriteOutput(os.Stdout, runResult)
}
