// Command experiments regenerates the paper's evaluation artifacts on the
// simulated cluster and prints paper-style reports:
//
//	experiments fig3            quantified I/O performance impact factors
//	experiments sweep           fig3 regenerated through the campaign scheduler
//	experiments fig5            per-iteration throughput with the anomaly
//	experiments fig6            IO500 boundary test cases, broken node
//	experiments cycle           Example I: new knowledge generation
//	experiments predict         outlook: linear-regression prediction
//	experiments bboxmap         bounding-box expectation mapping
//	experiments mix             workload-mix derivation
//	experiments trove           Treasure-Trove scale analytics, row vs columnar
//	experiments all             everything above in order
//
// A global --seed flag makes every experiment reproducible.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "experiment seed")
	runs := fs.Int("runs", 8, "IO500 repetitions for fig6")
	workers := fs.Int("workers", 0, "campaign workers for sweep (0 = NumCPU)")
	subs := fs.Int("subs", 3000, "synthetic IO500 submissions for trove (30000 = full Treasure-Trove scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: experiments [--seed N] [--runs N] [--workers N] [--subs N] {fig3|sweep|fig5|fig6|cycle|predict|bboxmap|causes|tune|mix|trove|all}")
	}
	what := fs.Arg(0)
	steps := map[string]func() error{
		"fig3": func() error {
			factors, err := experiments.Fig3(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.Fig3Report(factors))
			return nil
		},
		"sweep": func() error {
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			defer stop()
			r, err := experiments.Fig3Sweep(ctx, nil, *seed, *workers)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"fig5": func() error {
			r, err := experiments.Fig5(*seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"fig6": func() error {
			r, err := experiments.Fig6(*runs, *seed, 0.35)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"cycle": func() error {
			r, err := experiments.CycleExample(*seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"predict": func() error {
			r, err := experiments.Prediction(*seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"bboxmap": func() error {
			box, placement, err := experiments.BoundingBoxMapping(*seed)
			if err != nil {
				return err
			}
			fmt.Printf("Bounding box: write [%.3f, %.3f] GiB/s, read [%.3f, %.3f] GiB/s\n",
				box.WriteLow, box.WriteHigh, box.ReadLow, box.ReadHigh)
			fmt.Printf("Application placement: %s\n", placement)
			return nil
		},
		"causes": func() error {
			r, err := experiments.CauseCorrelation(*seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"tune": func() error {
			r, err := experiments.Autotune(*seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"trove": func() error {
			r, err := experiments.TreasureTrove(*subs, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.Report())
			return nil
		},
		"mix": func() error {
			mix, err := experiments.WorkloadMix(*seed)
			if err != nil {
				return err
			}
			fmt.Printf("Workload mix: write fraction %.2f, mean transfer %d bytes, %d command(s)\n",
				mix.WriteFraction, mix.MeanTransfer, len(mix.Commands))
			for _, c := range mix.Commands {
				fmt.Printf("  %s\n", c)
			}
			return nil
		},
	}
	if what == "all" {
		for _, name := range []string{"fig3", "sweep", "fig5", "fig6", "cycle", "predict", "bboxmap", "causes", "tune", "mix", "trove"} {
			fmt.Printf("==== %s ====\n", name)
			if err := steps[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	step, ok := steps[what]
	if !ok {
		return fmt.Errorf("unknown experiment %q", what)
	}
	return step()
}
