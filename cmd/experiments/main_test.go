package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data := make([]byte, 1<<20)
	n, _ := r.Read(data)
	r.Close()
	return string(data[:n]), runErr
}

func TestEachExperiment(t *testing.T) {
	wants := map[string]string{
		"fig3":    "impact factors",
		"sweep":   `campaign "fig3-sweep"`,
		"fig5":    "paper: 2850",
		"fig6":    "boundary test cases",
		"cycle":   "new knowledge generation",
		"predict": "linear-regression",
		"bboxmap": "Bounding box:",
		"tune":    "SCTuner + H5Tuner",
		"mix":     "Workload mix:",
	}
	for name, want := range wants {
		out, err := capture(t, func() error { return run([]string{"--runs", "4", name}) })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q:\n%s", name, want, out)
		}
	}
}

func TestAll(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"--runs", "3", "all"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"==== fig3 ====", "==== fig5 ====", "==== fig6 ====", "==== mix ===="} {
		if !strings.Contains(out, section) {
			t.Errorf("all output missing %q", section)
		}
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{nil, {"nope"}, {"fig5", "extra"}} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
