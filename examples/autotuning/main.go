// Offline autotuning via the recommendation module (the paper's
// I/O-optimization use case): a deliberately mistuned run (tiny transfers,
// shared file, raw POSIX) is stored as knowledge, the recommendation
// module proposes fixes, the fixes are applied through the workload
// generator, and the retuned configuration is rerun — showing the
// bandwidth gained per applied recommendation.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/recommend"
	"repro/internal/units"
)

func main() {
	cycle, err := core.New(cluster.FuchsCSC(), 99)
	if err != nil {
		log.Fatal(err)
	}

	// The mistuned starting point: 64 KiB transfers into one shared file
	// from 80 POSIX ranks.
	cfg := ior.Default()
	cfg.API = cluster.POSIX
	cfg.TransferSize = 64 * units.KiB
	cfg.BlockSize = 4 * units.MiB
	cfg.Segments = 40
	cfg.Repetitions = 3
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	cfg.ReorderTasks = true
	cfg.Fsync = true
	cfg.TestFile = "/scratch/tuning/shared"

	rep, err := cycle.Run(core.IORGenerator{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	before, err := cycle.Store.MeanBandwidth(rep.ObjectIDs[0], "write")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mistuned run: %.0f MiB/s write\n\n", before)

	recs, err := cycle.Recommend(rep.ObjectIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(recommend.Report(recs))

	// Apply the recommendations: larger transfers, file-per-process,
	// MPI-IO (the knobs the advisor names).
	tuned := cfg
	tuned.TransferSize = 2 * units.MiB
	tuned.BlockSize = 4 * units.MiB
	tuned.FilePerProc = true
	tuned.API = cluster.MPIIO
	cycle.Seed = 100
	rep2, err := cycle.Run(core.IORGenerator{Config: tuned})
	if err != nil {
		log.Fatal(err)
	}
	after, err := cycle.Store.MeanBandwidth(rep2.ObjectIDs[0], "write")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretuned run: %.0f MiB/s write (%.1fx speedup)\n", after, after/before)
}
