// Workload generation (the paper's Example I scaled up): stored knowledge
// seeds a JUBE parameter sweep — the sweep configuration is *generated*
// from an existing knowledge object, executed through the JUBE engine with
// every workpackage routed to the IOR simulator, and each result flows
// back into the knowledge base, growing it by one sweep per cycle turn.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/workloadgen"
)

func main() {
	cycle, err := core.New(cluster.FuchsCSC(), 314)
	if err != nil {
		log.Fatal(err)
	}

	// Seed knowledge: one paper-style run.
	cfg, err := ior.ParseCommandLine(
		"ior -a mpiio -b 4m -t 2m -s 8 -F -C -i 2 -o /scratch/fuchs/zhuz/test80 -k")
	if err != nil {
		log.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20
	rep, err := cycle.Run(core.IORGenerator{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	seedObj, err := cycle.Store.LoadObject(rep.ObjectIDs[0])
	if err != nil {
		log.Fatal(err)
	}

	// Generate a JUBE sweep around the stored command.
	base, err := workloadgen.CommandFromObject(seedObj)
	if err != nil {
		log.Fatal(err)
	}
	sweep := workloadgen.Sweep{
		Name: "transfer-task-sweep",
		Base: base,
		Parameters: map[string][]string{
			"-t": {"1m", "2m", "4m"},
			"-N": {"40", "80"},
		},
	}
	xmlText, err := sweep.JUBEConfig()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated JUBE configuration:")
	fmt.Println(xmlText)

	// Run the sweep through the cycle: 6 workpackages, 6 new knowledge
	// objects.
	workdir, err := os.MkdirTemp("", "iokc-sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	rep2, err := cycle.Run(core.JUBEGenerator{ConfigXML: xmlText, BaseDir: workdir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep stored %d new knowledge objects:\n", len(rep2.ObjectIDs))
	for _, id := range rep2.ObjectIDs {
		o, err := cycle.Store.LoadObject(id)
		if err != nil {
			log.Fatal(err)
		}
		w, _ := o.SummaryFor("write")
		fmt.Printf("  #%d tasks=%-3s xfer=%-9s -> %7.0f MiB/s write\n",
			id, o.Pattern["tasks"], o.Pattern["transfersize"], w.MeanMiBps)
	}

	// Derive a synthetic workload mix from everything learned so far.
	ids := append(rep.ObjectIDs, rep2.ObjectIDs...)
	objs, err := cycle.LoadObjects(ids)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := workloadgen.DeriveMix(objs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived workload mix: %.0f%% writes, mean transfer %d bytes\n",
		mix.WriteFraction*100, mix.MeanTransfer)
}
