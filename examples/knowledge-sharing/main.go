// Knowledge sharing — the paper's core motivation: "to continuously grow
// the I/O knowledge base of the HPC community", knowledge must outlive its
// one-time use and be shared between users. Here a public knowledge
// database is served over the kdb wire protocol (Fig. 4's global
// database); user A contributes benchmark knowledge from "their" cluster
// session, and user B — connecting from a separate cycle — discovers it,
// compares it with their own run, learns the better configuration from
// A's knowledge, and applies it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/kdb"
	"repro/internal/schema"
	"repro/internal/units"
)

func main() {
	// The shared public database, served on an ephemeral port.
	backing, err := kdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer backing.Close()
	srv := &kdb.Server{DB: backing}
	l, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Drain client connections before the process exits.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "kdb://" + l.Addr().String()
	fmt.Printf("public knowledge database at %s\n\n", url)

	// --- User A: has already discovered a well-tuned configuration and
	// shares the resulting knowledge.
	storeA, err := schema.Open(url)
	if err != nil {
		log.Fatal(err)
	}
	defer storeA.Close()
	cycleA, err := core.New(cluster.FuchsCSC(), 111)
	if err != nil {
		log.Fatal(err)
	}
	cycleA.Store.Close()
	cycleA.Store = storeA

	tuned := ior.Default()
	tuned.API = cluster.MPIIO
	tuned.TransferSize = 2 * units.MiB
	tuned.BlockSize = 4 * units.MiB
	tuned.Segments = 20
	tuned.Repetitions = 3
	tuned.NumTasks = 80
	tuned.TasksPerNode = 20
	tuned.FilePerProc = true
	tuned.ReorderTasks = true
	tuned.TestFile = "/scratch/userA/tuned"
	repA, err := cycleA.Run(core.IORGenerator{Config: tuned})
	if err != nil {
		log.Fatal(err)
	}
	bwA, err := storeA.MeanBandwidth(repA.ObjectIDs[0], "write")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user A shares knowledge #%d: %s -> %.0f MiB/s write\n",
		repA.ObjectIDs[0], tuned.CommandLine(), bwA)

	// --- User B: connects to the same public database with their own
	// (mistuned) workload.
	storeB, err := schema.Open(url)
	if err != nil {
		log.Fatal(err)
	}
	defer storeB.Close()
	cycleB, err := core.New(cluster.FuchsCSC(), 222)
	if err != nil {
		log.Fatal(err)
	}
	cycleB.Store.Close()
	cycleB.Store = storeB

	naive := tuned
	naive.API = cluster.POSIX
	naive.TransferSize = 64 * units.KiB
	naive.FilePerProc = false
	naive.TestFile = "/scratch/userB/naive"
	repB, err := cycleB.Run(core.IORGenerator{Config: naive})
	if err != nil {
		log.Fatal(err)
	}
	bwB, err := storeB.MeanBandwidth(repB.ObjectIDs[0], "write")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user B's own run:      knowledge #%d -> %.0f MiB/s write\n", repB.ObjectIDs[0], bwB)

	// User B browses the shared base, finds A's faster knowledge for a
	// comparable workload, and loads A's command.
	metas, err := storeB.ListObjects()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared knowledge base now holds %d objects from all users\n", len(metas))
	var bestID int64
	bestBW := bwB
	for _, m := range metas {
		if bw, err := storeB.MeanBandwidth(m.ID, "write"); err == nil && bw > bestBW {
			bestBW, bestID = bw, m.ID
		}
	}
	if bestID == 0 {
		fmt.Println("no faster shared knowledge found")
		return
	}
	borrowed, err := storeB.LoadObject(bestID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user B adopts knowledge #%d (%s)\n", bestID, borrowed.Command)

	// Apply the borrowed configuration to user B's file and rerun.
	adopted, err := ior.ParseCommandLine(borrowed.Command)
	if err != nil {
		log.Fatal(err)
	}
	adopted.NumTasks = 80
	adopted.TasksPerNode = 20
	adopted.TestFile = "/scratch/userB/adopted"
	repB2, err := cycleB.Run(core.IORGenerator{Config: adopted})
	if err != nil {
		log.Fatal(err)
	}
	bwB2, err := storeB.MeanBandwidth(repB2.ObjectIDs[0], "write")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user B after adopting shared knowledge: %.0f MiB/s write (%.1fx faster)\n",
		bwB2, bwB2/bwB)
}
