// Anomaly detection (the paper's Example II, Fig. 5): a benchmark run
// whose second iteration suffers transient storage-side interference is
// stored as knowledge; the analysis phase flags the dip, corroborates it
// with the operation counts and times, and a cross-run baseline comparison
// shows how populations of knowledge sharpen detection.
package main

import (
	"fmt"
	"log"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
)

func main() {
	machine := cluster.FuchsCSC()
	cycle, err := core.New(machine, 2022)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ior.ParseCommandLine(
		"ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k")
	if err != nil {
		log.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20

	// A healthy baseline run first.
	baselineRep, err := cycle.Run(core.IORGenerator{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}

	// Then the faulty run: write-path congestion during iteration 2 only
	// (a competing burst or RAID rebuild on the storage side).
	faulty := core.IORGenerator{
		Config: cfg,
		BeforeIteration: func(iter int, m *cluster.Machine) {
			if iter == 1 {
				m.WriteCongestion = 0.44
			} else {
				m.ClearFaults()
			}
		},
	}
	faultyRep, err := cycle.Run(faulty)
	if err != nil {
		log.Fatal(err)
	}

	obj, err := cycle.Store.LoadObject(faultyRep.ObjectIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-iteration write throughput (MiB/s):")
	for _, r := range obj.ResultsFor("write") {
		fmt.Printf("  iteration %d: %8.1f  (%.0f ops/s, %.2f s total)\n",
			r.Iteration+1, r.BwMiBps, r.OpsPerSec, r.TotalSec)
	}

	// Within-run detection (the Fig. 5 visualization in numbers).
	findings, err := anomaly.DetectObject(obj, anomaly.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(anomaly.Report(findings))

	// Cross-run detection against the healthy baseline population.
	baseline, err := cycle.Store.LoadObject(baselineRep.ObjectIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	f, flagged, err := anomaly.CompareAgainstBaseline(
		obj, "write", baseline.Bandwidths("write"), 0.85)
	if err != nil {
		log.Fatal(err)
	}
	if flagged {
		fmt.Printf("cross-run check: %s\n", f)
	} else {
		fmt.Println("cross-run check: run mean within the baseline envelope")
	}
}
