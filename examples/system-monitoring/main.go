// Center-wide monitoring as a knowledge source: the monitor samples the
// file system's aggregate load while an accounting job mix runs (including
// a midnight burst writer), the series is extracted into a knowledge
// object through the same registry the benchmarks use, the analysis phase
// flags the burst, and Slurm accounting names the culprit — generation,
// extraction, analysis, and cause correlation on monitoring data instead
// of benchmarks.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/extract"
	"repro/internal/monitor"
	"repro/internal/rng"
	"repro/internal/slurm"
)

func main() {
	machine := cluster.FuchsCSC()
	src := rng.New(2022)
	from := time.Date(2022, 7, 7, 23, 0, 0, 0, time.UTC)
	to := from.Add(2 * time.Hour)

	// Background job mix plus one aggressive burst writer at midnight.
	jobs, err := slurm.Synthesize(slurm.SynthesizeConfig{
		Jobs: 12, From: from, To: to, MaxNodes: 8,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	burst := slurm.Job{
		JobID: 7777, Name: "burst-writer", User: "mallory", Partition: "parallel",
		Nodes: 16, NodeList: "fuchs[100-115]", State: slurm.StateCompleted,
		Start: from.Add(55 * time.Minute), End: from.Add(70 * time.Minute),
		WriteMiBps: 14000,
	}
	jobs = append(jobs, burst)

	// Phase I: collect the monitoring series and export it as CSV.
	series, err := monitor.Collector{Machine: machine}.Collect(jobs, from, to, time.Minute, src.Fork())
	if err != nil {
		log.Fatal(err)
	}
	var csvOut bytes.Buffer
	if err := monitor.Write(&csvOut, series); err != nil {
		log.Fatal(err)
	}
	peak, _ := series.PeakWindow()
	fmt.Printf("collected %d samples; peak load %.0f MiB/s at %s (%d jobs)\n",
		len(series.Samples), peak.WriteMiBps+peak.ReadMiBps,
		peak.Time.Format("15:04"), peak.ActiveJobs)

	// Phase II: the registry recognizes the export automatically.
	ex, err := extract.NewRegistry().Extract(csvOut.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	obj := ex.Object
	w, _ := obj.SummaryFor("write")
	fmt.Printf("knowledge object: %s, write mean %.0f MiB/s (min %.0f, max %.0f)\n",
		obj.Command, w.MeanMiBps, w.MinMiBps, w.MaxMiBps)

	// Phase IV: the same outlier machinery that inspects benchmark
	// iterations inspects the time series.
	findings, err := anomaly.DetectObject(obj, anomaly.Default())
	if err != nil {
		log.Fatal(err)
	}
	var burstFindings []anomaly.Finding
	for _, f := range findings {
		if f.Operation == "write" && f.Ratio > 1.5 {
			burstFindings = append(burstFindings, f)
		}
	}
	fmt.Printf("high-load write anomalies: %d sample(s)\n", len(burstFindings))

	// Phase V: correlate the strongest anomaly's window with accounting.
	if len(burstFindings) == 0 {
		fmt.Println("no burst found — nothing to correlate")
		return
	}
	// Monitoring samples are instants, not sequential phases, so the
	// window comes straight from the sample timestamps.
	f := burstFindings[0]
	winFrom := obj.Began.Add(time.Duration(f.Iteration) * time.Minute)
	winTo := winFrom.Add(time.Minute)
	suspects := slurm.CorrelateWindow(jobs, winFrom, winTo, "")
	fmt.Printf("window %s .. %s\n", winFrom.Format("15:04"), winTo.Format("15:04"))
	fmt.Print(slurm.Report(suspects[:min(3, len(suspects))]))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
