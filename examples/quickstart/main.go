// Quickstart: one full pass through the I/O knowledge cycle — generate
// knowledge with the IOR simulator on the modelled FUCHS-CSC cluster,
// extract and persist it, analyze it, and close the loop by deriving a new
// configuration from the stored knowledge.
package main

import (
	"fmt"
	"log"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
)

func main() {
	// Phase 0: a machine to experiment on (198 nodes, BeeGFS, IB-FDR).
	machine := cluster.FuchsCSC()

	// Wire the cycle: extractor registry + in-memory knowledge store.
	cycle, err := core.New(machine, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Phase I (generation): the paper's Example-I IOR pattern.
	cfg, err := ior.ParseCommandLine(
		"ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k")
	if err != nil {
		log.Fatal(err)
	}
	cfg.NumTasks = 80
	cfg.TasksPerNode = 20

	// Phases II+III (extraction, persistence) run inside the cycle.
	report, err := cycle.Run(core.IORGenerator{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	id := report.ObjectIDs[0]
	fmt.Printf("stored knowledge object #%d\n", id)

	// Phase IV (analysis): inspect the stored knowledge.
	obj, err := cycle.Store.LoadObject(id)
	if err != nil {
		log.Fatal(err)
	}
	w, _ := obj.SummaryFor("write")
	r, _ := obj.SummaryFor("read")
	fmt.Printf("write: mean %.0f MiB/s over %d iterations (min %.0f, max %.0f)\n",
		w.MeanMiBps, w.Iterations, w.MinMiBps, w.MaxMiBps)
	fmt.Printf("read:  mean %.0f MiB/s\n", r.MeanMiBps)
	fmt.Printf("file system: %s, %d stripe targets, chunk %d bytes, metadata node %s\n",
		obj.FileSystem.Type, obj.FileSystem.NumTargets, obj.FileSystem.ChunkSize, obj.FileSystem.MetadataNode)
	findings, err := cycle.Analyze(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(anomaly.Report(findings))

	// Phase V (usage): derive a new configuration from the knowledge and
	// feed it back into generation — the knowledge cycle closes.
	cmd, err := cycle.NewConfiguration(id, map[string]string{"-t": "4m", "-i": "3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next-iteration configuration: %s\n", cmd)
}
