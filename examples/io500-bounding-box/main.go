// IO500 bounding box (the paper's Fig. 6 and the approach of Liem et al.):
// repeated IO500 runs — with one broken node degrading the read path —
// are persisted as IO500 knowledge objects; the boundary test cases are
// aggregated into boxplots, diagnosed, and an application run is mapped
// into the resulting expectation box.
package main

import (
	"fmt"
	"log"

	"repro/internal/bbox"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/io500"
	"repro/internal/ior"
	"repro/internal/knowledge"
)

func main() {
	cycle, err := core.New(cluster.FuchsCSC(), 5)
	if err != nil {
		log.Fatal(err)
	}

	// Eight IO500 runs on 40 cores; node 1's read path is broken the whole
	// time — exactly the hypothesis the paper offers for its bad
	// ior-easy-read result.
	var runs []*knowledge.IO500Object
	for seed := uint64(1); seed <= 8; seed++ {
		cycle.Seed = seed * 131
		g := core.IO500Generator{
			Config: io500.Default(),
			BeforePhase: func(phase string, m *cluster.Machine) {
				m.ClearFaults()
				if phase == io500.IorEasyRead {
					m.SetNodeFactor(1, 1, 0.35)
				}
			},
		}
		rep, err := cycle.Run(g)
		if err != nil {
			log.Fatal(err)
		}
		o, err := cycle.Store.LoadIO500(rep.IO500IDs[0])
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, o)
	}

	series, err := bbox.CollectSeries(runs)
	if err != nil {
		log.Fatal(err)
	}
	diags := bbox.DiagnoseSeries(series, 0.05)
	fmt.Print(bbox.Report(series, diags))

	// Expectation mapping: the box must come from a *healthy* system —
	// a faulty run yields an inverted box, which FromIO500 rejects.
	cycle.Seed = 4242
	healthyRep, err := cycle.Run(core.IO500Generator{Config: io500.Default()})
	if err != nil {
		log.Fatal(err)
	}
	healthy, err := cycle.Store.LoadIO500(healthyRep.IO500IDs[0])
	if err != nil {
		log.Fatal(err)
	}
	box, err := bbox.FromIO500(healthy)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := ior.ParseCommandLine("ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 3 -o /scratch/app -k")
	if err != nil {
		log.Fatal(err)
	}
	cfg.NumTasks = 40
	cfg.TasksPerNode = 20
	rep, err := cycle.Run(core.IORGenerator{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	app, err := cycle.Store.LoadObject(rep.ObjectIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	placement, err := box.Place(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application expectation: %s\n", placement)
}
