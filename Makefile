# Repro of "A Comprehensive I/O Knowledge Cycle for Modular and Automated
# HPC Workload Analysis". Go stdlib only; no external tools beyond the Go
# toolchain are required.

GO ?= go

.PHONY: check build vet test race bench tier1

# check is the full gate: what CI (and scripts/check.sh) runs.
check: vet build race tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tier1 is the repo's baseline acceptance suite.
tier1:
	$(GO) test ./...

# race re-runs the storage/server packages under the race detector; the
# kdb suite includes concurrent Exec/Query/Compact and multi-client
# server stress tests.
race:
	$(GO) test -race ./internal/kdb/... ./internal/schema/...

test: tier1

bench:
	$(GO) test -bench=. -benchmem
