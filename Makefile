# Repro of "A Comprehensive I/O Knowledge Cycle for Modular and Automated
# HPC Workload Analysis". Go stdlib only; no external tools beyond the Go
# toolchain are required.

GO ?= go

.PHONY: check build vet test race bench benchsmoke tier1

# check is the full gate: what CI (and scripts/check.sh) runs.
check: vet build race tier1 benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tier1 is the repo's baseline acceptance suite.
tier1:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# kdb's concurrent Exec/Query/Compact and server stress tests, schema's
# batched saves, the campaign scheduler's worker pool, and core's
# shared-store cycle runs.
race:
	$(GO) test -race ./internal/kdb/... ./internal/schema/... ./internal/campaign/... ./internal/core/...

test: tier1

bench:
	$(GO) test -bench=. -benchmem

# benchsmoke compiles and runs every benchmark exactly once so a broken
# benchmark cannot hide until someone runs the full suite.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
