# Repro of "A Comprehensive I/O Knowledge Cycle for Modular and Automated
# HPC Workload Analysis". Go stdlib only; no external tools beyond the Go
# toolchain are required.

GO ?= go

.PHONY: check build fmt vet test race bench benchsmoke tier1

# check is the full gate: what CI (and scripts/check.sh) runs.
check: fmt vet build race tier1 benchsmoke

build:
	$(GO) build ./...

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# tier1 is the repo's baseline acceptance suite.
tier1:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# kdb's concurrent Exec/Query/Compact and server stress tests, colstore's
# concurrent analytic reads racing writers and lazy rebuilds, repl's
# follower/router chaos scenarios, shard's scatter-gather coordinator,
# schema's batched saves, the campaign scheduler's worker pool, core's
# shared-store cycle runs, telemetry's lock-free metric registry, and
# vcs's commit/checkout/merge paths racing store writers.
race:
	$(GO) test -race ./internal/kdb/... ./internal/colstore/... ./internal/repl/... ./internal/shard/... ./internal/schema/... ./internal/campaign/... ./internal/core/... ./internal/telemetry/... ./internal/vcs/...

test: tier1

bench:
	$(GO) test -bench=. -benchmem

# benchsmoke compiles and runs every benchmark exactly once so a broken
# benchmark cannot hide until someone runs the full suite.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
