# Repro of "A Comprehensive I/O Knowledge Cycle for Modular and Automated
# HPC Workload Analysis". Go stdlib only; no external tools beyond the Go
# toolchain are required.

GO ?= go

.PHONY: check build fmt vet test race bench benchsmoke tier1 loadsmoke

# check is the full gate: what CI (and scripts/check.sh) runs.
check: fmt vet build race tier1 benchsmoke loadsmoke

build:
	$(GO) build ./...

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# tier1 is the repo's baseline acceptance suite.
tier1:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages under the race detector:
# kdb's concurrent Exec/Query/Compact and server stress tests, colstore's
# concurrent analytic reads racing writers and lazy rebuilds, repl's
# follower/router chaos scenarios, shard's scatter-gather coordinator,
# schema's batched saves, the campaign scheduler's worker pool, core's
# shared-store cycle runs, telemetry's lock-free metric registry, and
# vcs's commit/checkout/merge paths racing store writers, the api's
# LSN-invalidated cache racing ingest, and loadgen's concurrent clients.
race:
	$(GO) test -race ./internal/kdb/... ./internal/colstore/... ./internal/repl/... ./internal/shard/... ./internal/schema/... ./internal/campaign/... ./internal/core/... ./internal/telemetry/... ./internal/vcs/... ./internal/api/... ./internal/loadgen/...

test: tier1

bench:
	$(GO) test -bench=. -benchmem

# benchsmoke compiles and runs every benchmark exactly once so a broken
# benchmark cannot hide until someone runs the full suite.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# loadsmoke drives the in-process self-test target with 1k concurrent
# clients for 10s and fails if the telemetry-histogram p99 regresses past
# the (deliberately generous) 750ms ceiling or errors exceed 1%. This is
# the CI-sized slice of EXPERIMENTS E13; the full 10k-connection run uses
# separate server and loadgen processes.
loadsmoke:
	$(GO) run ./cmd/iokc loadgen --selftest --conns 1000 --duration 10s --objects 200 --io500 200 --max-p99 750ms --max-error-rate 0.01
