#!/bin/sh
# Full verification gate, equivalent to `make check`, for environments
# without make. Runs gofmt, vet, build, the race-enabled concurrency
# suites, the tier-1 test suite, a one-iteration benchmark smoke pass,
# and a 1k-connection load smoke with a p99 regression gate.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:"
	echo "$unformatted"
	exit 1
fi
echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race (kdb, colstore, repl, shard, schema, campaign, core, telemetry, vcs, api, loadgen) =="
go test -race ./internal/kdb/... ./internal/colstore/... ./internal/repl/... ./internal/shard/... ./internal/schema/... ./internal/campaign/... ./internal/core/... ./internal/telemetry/... ./internal/vcs/... ./internal/api/... ./internal/loadgen/...
echo "== go test (tier 1) =="
go test ./...
echo "== bench smoke (1 iteration) =="
go test -run='^$' -bench=. -benchtime=1x ./... > /dev/null
echo "== load smoke (1k conns, 10s, p99 gate) =="
go run ./cmd/iokc loadgen --selftest --conns 1000 --duration 10s --objects 200 --io500 200 --max-p99 750ms --max-error-rate 0.01
echo "OK"
