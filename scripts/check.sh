#!/bin/sh
# Full verification gate, equivalent to `make check`, for environments
# without make. Runs gofmt, vet, build, the race-enabled concurrency
# suites, the tier-1 test suite, and a one-iteration benchmark smoke pass.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:"
	echo "$unformatted"
	exit 1
fi
echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race (kdb, colstore, repl, shard, schema, campaign, core, telemetry, vcs) =="
go test -race ./internal/kdb/... ./internal/colstore/... ./internal/repl/... ./internal/shard/... ./internal/schema/... ./internal/campaign/... ./internal/core/... ./internal/telemetry/... ./internal/vcs/...
echo "== go test (tier 1) =="
go test ./...
echo "== bench smoke (1 iteration) =="
go test -run='^$' -bench=. -benchtime=1x ./... > /dev/null
echo "OK"
