#!/bin/sh
# Full verification gate, equivalent to `make check`, for environments
# without make. Runs vet, build, the race-enabled storage/server suites,
# and the tier-1 test suite.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race (kdb, schema) =="
go test -race ./internal/kdb/... ./internal/schema/...
echo "== go test (tier 1) =="
go test ./...
echo "OK"
