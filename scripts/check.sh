#!/bin/sh
# Full verification gate, equivalent to `make check`, for environments
# without make. Runs vet, build, the race-enabled concurrency suites,
# the tier-1 test suite, and a one-iteration benchmark smoke pass.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race (kdb, schema, campaign, core) =="
go test -race ./internal/kdb/... ./internal/schema/... ./internal/campaign/... ./internal/core/...
echo "== go test (tier 1) =="
go test ./...
echo "== bench smoke (1 iteration) =="
go test -run='^$' -bench=. -benchtime=1x ./... > /dev/null
echo "OK"
